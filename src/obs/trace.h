// Deterministic schedule tracing for the encoder farm.
//
// Design constraints, in order:
//
//  1. *Bit-identical traces.*  A run's merged trace must be a pure
//     function of (scenario, config) — never of the host worker count
//     or thread interleaving.  So events are stamped with *simulated*
//     cycles, buffers are per virtual processor (not per host thread),
//     and the merge orders by (time, buffer id, intra-buffer sequence),
//     all deterministic.
//  2. *Zero overhead when off.*  Every data-plane emission site is a
//     branch on a null TraceBuffer pointer; with tracing disabled no
//     event is constructed and no memory is touched (BM_FarmThroughput
//     regression-gates the claim).
//  3. *Bounded memory.*  Each buffer is a fixed-capacity ring of
//     32-byte POD events, single-writer (one virtual processor is
//     simulated by exactly one worker, the control plane is
//     sequential), so pushes are lock-free by construction.  Overflow
//     drops the *oldest* event and counts it — never silent
//     truncation, never unbounded growth.
//
// export_chrome_trace turns a merged trace into Chrome trace-event
// JSON (the "traceEvents" array format), loadable in Perfetto or
// chrome://tracing: one timeline row per virtual processor plus one
// for the control plane, service segments as B/E duration pairs,
// admission / fault / miss events as instants, and queue-depth /
// encoder-phase counter tracks.  Timestamps are raw simulated cycles
// (the paper's 8 GHz virtual clock) so the export is deterministic;
// the viewer's "us" unit label reads as virtual cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/types.h"

namespace qosctrl::obs {

/// Event kinds.  Values are part of the binary trace layout; append
/// only.
enum class EventKind : std::uint16_t {
  kNone = 0,
  kDispatch,        ///< frame enters service; arg = display deadline
  kResume,          ///< preempted frame resumes; arg = remaining cycles
  kPreempt,         ///< frame suspended; arg = remaining cycles
  kComplete,        ///< service done; arg = cycles, aux = CompleteOutcome
  kConcealService,  ///< in-service frame lost to an outage; arg = cycles
  kDeadlineMiss,    ///< delivered past deadline; arg = lateness
  kEpochClose,      ///< budget epoch superseded; arg = old budget
  kEpochOpen,       ///< budget epoch active; arg = new budget
  kAdmit,           ///< arg = table budget, aux = processor
  kReject,
  kRenegotiate,     ///< budget shrunk; arg = new budget
  kRestore,         ///< budget grown back; arg = new budget
  kMigrate,         ///< placed off preferred; aux = processor
  kFailover,        ///< re-admitted after failure; aux = new processor
  kFailoverDrop,    ///< no survivor could host the displaced stream
  kProcFail,        ///< outage starts; aux = 1 when permanent
  kProcRepair,      ///< transient outage ends
  kFaultInject,     ///< injected WCET overrun; arg = inflated demand
  kConceal,         ///< never-serviced frame concealed; aux = reason
  kQuarantine,      ///< stream quarantined; arg = release time
  kQueueDepth,      ///< counter: run-queue depth; arg = depth
  kPhaseCycles,     ///< counter: cumulative phase cycles; aux = phase
  kJoinBatch,       ///< control epoch closed; arg = joins batched
  kRebalance,       ///< cross-shard migration; arg = processor, aux = shard
  kSloAlert,        ///< burn-rate alert; arg = window, aux = objective
};

/// aux of kComplete: how the finished service was routed.
enum class CompleteOutcome : std::uint32_t {
  kDelivered = 0,
  kLost = 1,     ///< post-encode loss injection
  kAborted = 2,  ///< cut at the commitment by the budget policer
};

/// aux of kConceal: why a frame was concealed without service.
enum class ConcealReason : std::uint32_t {
  kQueuedOutage = 0,     ///< queued when the processor went down
  kSuspendedOutage = 1,  ///< preempted mid-service, then outage
  kArrivalOutage = 2,    ///< arrived while the processor was down
  kQuarantineDrop = 3,   ///< dropped by the overrun policer
};

/// One fixed-size binary trace event.  The layout is the pinned unit
/// of the determinism contract: tests compare merged traces (and
/// their JSON export) byte for byte.
struct TraceEvent {
  rt::Cycles time = 0;        ///< simulated cycles
  std::int64_t arg = 0;       ///< kind-specific payload
  std::int32_t stream = -1;   ///< stream id (-1: processor-scoped)
  std::int32_t frame = -1;    ///< camera frame index (-1: none)
  std::uint16_t kind = 0;     ///< EventKind
  std::uint16_t cpu = 0;      ///< buffer id (processor; last = control)
  std::uint32_t aux = 0;      ///< kind-specific small payload
};
static_assert(sizeof(TraceEvent) == 32,
              "TraceEvent is a pinned 32-byte binary layout");

/// Fixed-capacity single-writer ring of TraceEvents.  Overflow
/// overwrites the oldest event and counts the drop.
class TraceBuffer {
 public:
  TraceBuffer(std::uint16_t cpu, std::size_t capacity);

  void push(EventKind kind, rt::Cycles time, std::int32_t stream,
            std::int32_t frame, std::int64_t arg, std::uint32_t aux = 0);

  /// Events pushed minus events retained (oldest-first overwrites).
  long long dropped() const;
  long long pushed() const { return static_cast<long long>(pushed_); }
  std::uint16_t cpu() const { return cpu_; }

  /// Appends the retained events, oldest first, in emission order.
  void drain_to(std::vector<TraceEvent>* out) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t pushed_ = 0;
  std::uint16_t cpu_;
};

/// One ring per virtual processor plus one for the control plane
/// (buffer id = num_processors).  The recorder itself is only
/// constructed/merged on the control plane; workers touch only their
/// own processor's buffer.
class TraceRecorder {
 public:
  TraceRecorder(int num_processors, std::size_t capacity_per_buffer);

  TraceBuffer* processor(int p) { return &buffers_[static_cast<std::size_t>(p)]; }
  TraceBuffer* control() { return &buffers_.back(); }
  int num_processors() const {
    return static_cast<int>(buffers_.size()) - 1;
  }

  /// Total events dropped to ring overflow, over all buffers.
  long long dropped() const;

  /// The merged trace: every retained event, stably ordered by
  /// simulated time with (buffer id, emission order) breaking ties —
  /// a pure function of the buffer contents, so bit-identical for any
  /// worker count.
  std::vector<TraceEvent> merged() const;

 private:
  std::vector<TraceBuffer> buffers_;
};

/// Chrome trace-event JSON ({"traceEvents":[...]}) of a merged trace;
/// `num_processors` names the timeline rows (the control plane is tid
/// num_processors).  Pure function of its inputs.
std::string export_chrome_trace(const std::vector<TraceEvent>& events,
                                int num_processors);

}  // namespace qosctrl::obs

#include "qos/feedback.h"

#include <algorithm>
#include <cmath>

#include "sched/edf.h"
#include "util/check.h"

namespace qosctrl::qos {

FeedbackController::FeedbackController(const rt::ParameterizedSystem& sys,
                                       rt::Cycles budget,
                                       FeedbackConfig config)
    : sys_(&sys),
      budget_(budget),
      config_(config),
      levels_(sys.quality_levels()) {
  QC_EXPECT(budget > 0, "cycle budget must be positive");
  QC_EXPECT(config.setpoint > 0.0 && config.setpoint <= 1.0,
            "setpoint must be in (0, 1]");
  alpha_ = sched::edf_schedule(sys.graph(), sys.deadline_of(sys.qmin()));
  // Start mid-ladder, like a practitioner would.
  level_index_ = levels_.size() / 2;
}

void FeedbackController::start_cycle() {
  if (!first_cycle_) {
    // Close the loop on the finished cycle's utilization.
    const double utilization =
        static_cast<double>(cycle_cost_) / static_cast<double>(budget_);
    const double error = config_.setpoint - utilization;
    integral_ = std::clamp(integral_ + error, -config_.integral_clamp,
                           config_.integral_clamp);
    const double derivative = error - previous_error_;
    previous_error_ = error;
    const double correction = config_.kp * error + config_.ki * integral_ +
                              config_.kd * derivative;
    const auto delta = static_cast<long>(std::lround(correction));
    const long next = std::clamp<long>(
        static_cast<long>(level_index_) + delta, 0,
        static_cast<long>(levels_.size()) - 1);
    level_index_ = static_cast<std::size_t>(next);
  }
  first_cycle_ = false;
  cycle_cost_ = 0;
  i_ = 0;
}

Decision FeedbackController::next(rt::Cycles t) {
  (void)t;  // the whole point: it does not react within the cycle
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const rt::ActionId action = alpha_[i_];
  ++i_;
  return Decision{action, levels_[level_index_]};
}

void FeedbackController::observe(rt::Cycles actual_cost) {
  cycle_cost_ += actual_cost;
}

}  // namespace qosctrl::qos

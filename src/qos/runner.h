// Cycle runner: executes one full cycle of a controlled system against
// an *actual* execution-time source and records a per-step trace.
//
// This is the composition of Figure 1 — System + Controller — with the
// system abstracted as a cost callback.  Tests use adversarial cost
// callbacks (any C <= Cwc_theta) to check Proposition 2.1; the encoder
// substrate supplies its virtual-platform costs through the same hook.
#pragma once

#include <functional>
#include <vector>

#include "qos/controller.h"
#include "rt/parameterized_system.h"

namespace qosctrl::qos {

/// Actual execution time of `action` when run at `quality`.  The safety
/// contract requires the returned value to be <= Cwc_quality(action).
using CostSource =
    std::function<rt::Cycles(rt::ActionId action, rt::QualityLevel quality)>;

/// One executed step of a cycle.
struct StepTrace {
  rt::ActionId action = -1;
  rt::QualityLevel quality = 0;
  rt::Cycles start = 0;     ///< elapsed cycle time when the action began
  rt::Cycles cost = 0;      ///< actual execution time
  rt::Cycles deadline = 0;  ///< D_theta(action) at the chosen quality
  bool missed = false;      ///< start + cost > deadline
};

/// Result of running one cycle to completion.
struct CycleTrace {
  std::vector<StepTrace> steps;
  rt::Cycles total_cycles = 0;
  int deadline_misses = 0;

  /// Mean chosen quality level over quality-relevant steps (all steps
  /// if `relevant` is empty).
  double mean_quality() const;

  /// The paper's optimality metric: total time / last deadline, i.e.
  /// utilization of the cycle's time budget.
  double budget_utilization(rt::Cycles budget) const;
};

/// Runs a full cycle: repeatedly asks the controller for a decision,
/// obtains the actual cost from `source`, advances time, and records
/// the trace.  `sys` supplies deadlines for miss detection.
CycleTrace run_cycle(const rt::ParameterizedSystem& sys,
                     Controller& controller, const CostSource& source);

}  // namespace qosctrl::qos

// The paper's quality constraints (Section 2.2).
//
// At computation step i (0-based here: actions alpha[0..i-1] have run,
// alpha[i] is about to run), with elapsed time t since cycle start:
//
//  Qual_Const_av(alpha, theta, t, i):
//      t <= min( D_theta(alpha[i..n-1]) - cumsum Cav_theta(alpha[i..n-1]) )
//    — the remaining schedule fits at *average* times and the candidate
//      quality; this is the optimality side (fill the time budget).
//
//  Qual_Const_wc(alpha, theta, t, i):
//      t <= min( D_theta'(alpha[i..n-1]) - cumsum Cwc_theta'(alpha[i..n-1]) )
//    where theta' keeps theta on alpha[i] and is qmin on alpha[i+1..n-1]
//    — even if the next action takes its worst case at the candidate
//      quality, the rest still completes by its deadlines at minimum
//      quality and worst-case times; this is the safety side.
//
//  Qual_Const = Qual_Const_av AND Qual_Const_wc.
//
// These functions are the literal formulas; the table-driven controller
// evaluates the same predicates from precomputed suffix slacks (see
// qos/slack_tables.h) and is tested for equivalence against these.
#pragma once

#include "rt/parameterized_system.h"

namespace qosctrl::qos {

/// Worst suffix slack under average times at assignment theta:
/// min over j >= i of D_theta(alpha(j)) - sum_{k=i..j} Cav_theta(alpha(k)).
/// Qual_Const_av holds iff t <= this value.
rt::Cycles av_suffix_slack(const rt::ParameterizedSystem& sys,
                           const rt::ExecutionSequence& alpha,
                           const rt::QualityAssignment& theta, std::size_t i);

/// Worst suffix slack under worst-case times at theta' (theta on
/// alpha[i], qmin afterwards).  Qual_Const_wc holds iff t <= this value.
rt::Cycles wc_suffix_slack(const rt::ParameterizedSystem& sys,
                           const rt::ExecutionSequence& alpha,
                           const rt::QualityAssignment& theta, std::size_t i);

bool qual_const_av(const rt::ParameterizedSystem& sys,
                   const rt::ExecutionSequence& alpha,
                   const rt::QualityAssignment& theta, rt::Cycles t,
                   std::size_t i);

bool qual_const_wc(const rt::ParameterizedSystem& sys,
                   const rt::ExecutionSequence& alpha,
                   const rt::QualityAssignment& theta, rt::Cycles t,
                   std::size_t i);

/// The conjunction used by the Quality Manager.  `soft` drops the
/// worst-case part (paper Section 4: for soft deadlines the Quality
/// Manager applies only the average constraint).
bool qual_const(const rt::ParameterizedSystem& sys,
                const rt::ExecutionSequence& alpha,
                const rt::QualityAssignment& theta, rt::Cycles t,
                std::size_t i, bool soft = false);

}  // namespace qosctrl::qos

#include "qos/periodic_tables.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::qos {

PeriodicSlackTables PeriodicSlackTables::build(const PeriodicBody& body) {
  const std::size_t m = body.order.size();
  const std::size_t nq = body.qualities.size();
  QC_EXPECT(m > 0, "periodic body must contain at least one action");
  QC_EXPECT(nq > 0, "periodic body needs at least one quality level");
  QC_EXPECT(body.cav.size() == nq && body.cwc.size() == nq,
            "one cost row per quality level required");
  for (std::size_t qi = 0; qi < nq; ++qi) {
    QC_EXPECT(body.cav[qi].size() == m && body.cwc[qi].size() == m,
              "cost rows must cover every body action");
    for (std::size_t k = 0; k < m; ++k) {
      QC_EXPECT(body.cav[qi][k] >= 0 &&
                    body.cav[qi][k] <= body.cwc[qi][k],
                "0 <= Cav <= Cwc required");
    }
  }
  QC_EXPECT(body.period > 0, "per-iteration period must be positive");
  QC_EXPECT(body.iterations >= 1, "iteration count must be >= 1");

  PeriodicSlackTables out;
  out.body_ = body;
  out.rav_.assign(nq, std::vector<rt::Cycles>(m + 1, 0));
  out.tav_.assign(nq, 0);
  out.rwc0_.assign(m + 1, 0);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    for (std::size_t k = m; k-- > 0;) {
      out.rav_[qi][k] = out.rav_[qi][k + 1] + body.cav[qi][k];
    }
    out.tav_[qi] = out.rav_[qi][0];
  }
  for (std::size_t k = m; k-- > 0;) {
    out.rwc0_[k] = out.rwc0_[k + 1] + body.cwc[0][k];
  }
  out.twc0_ = out.rwc0_[0];
  return out;
}

rt::ActionId PeriodicSlackTables::action_at(std::size_t i) const {
  QC_EXPECT(i < num_positions(), "position out of range");
  const std::size_t m = body_size();
  const auto j = static_cast<rt::ActionId>(i / m);
  const std::size_t k = i % m;
  return j * static_cast<rt::ActionId>(m) + body_.order[k];
}

rt::Cycles PeriodicSlackTables::deadline_at(std::size_t i) const {
  QC_EXPECT(i < num_positions(), "position out of range");
  const auto j = static_cast<rt::Cycles>(i / body_size());
  return (j + 1) * body_.period;
}

rt::Cycles PeriodicSlackTables::slack_av(std::size_t i, std::size_t qi) const {
  QC_EXPECT(i < num_positions(), "position out of range");
  QC_EXPECT(qi < body_.qualities.size(), "quality index out of range");
  const std::size_t m = body_size();
  const auto j = static_cast<rt::Cycles>(i / m);
  const std::size_t k = i % m;
  const rt::Cycles remaining_iters = body_.iterations - 1 - j;
  const rt::Cycles drift = std::min<rt::Cycles>(0, body_.period - tav_[qi]);
  return (j + 1) * body_.period - rav_[qi][k] + remaining_iters * drift;
}

rt::Cycles PeriodicSlackTables::slack_wc(std::size_t i, std::size_t qi) const {
  QC_EXPECT(i < num_positions(), "position out of range");
  QC_EXPECT(qi < body_.qualities.size(), "quality index out of range");
  const std::size_t m = body_size();
  const auto j = static_cast<rt::Cycles>(i / m);
  const std::size_t k = i % m;

  // tail_wc of the *next* position (qmin worst-case suffix slack).
  rt::Cycles tail = rt::kNoDeadline;
  if (i + 1 < num_positions()) {
    const std::size_t i2 = i + 1;
    const auto j2 = static_cast<rt::Cycles>(i2 / m);
    const std::size_t k2 = i2 % m;
    const rt::Cycles remaining_iters = body_.iterations - 1 - j2;
    const rt::Cycles drift = std::min<rt::Cycles>(0, body_.period - twc0_);
    tail = (j2 + 1) * body_.period - rwc0_[k2] + remaining_iters * drift;
  }
  const rt::Cycles own_deadline = (j + 1) * body_.period;
  return std::min(own_deadline, tail) - body_.cwc[qi][k];
}

std::size_t PeriodicSlackTables::table_bytes() const {
  // What the embedded artifact persists: per-quality suffix sums of
  // averages, the qmin worst-case suffix sums, per-position worst-case
  // costs, the body order, and four scalars.
  const std::size_t m = body_size();
  const std::size_t nq = body_.qualities.size();
  return nq * (m + 1) * sizeof(rt::Cycles)      // rav_
         + nq * sizeof(rt::Cycles)              // tav_
         + (m + 1) * sizeof(rt::Cycles)         // rwc0_
         + nq * m * sizeof(rt::Cycles)          // cwc rows (for slack_wc)
         + m * sizeof(rt::ActionId)             // body order
         + 4 * sizeof(rt::Cycles);              // period, N, twc0, qmin
}

PeriodicTableController::PeriodicTableController(
    std::shared_ptr<const PeriodicSlackTables> tables, bool soft)
    : tables_(std::move(tables)), soft_(soft) {
  QC_EXPECT(tables_ != nullptr, "tables must not be null");
}

std::pair<rt::ActionId, rt::QualityLevel> PeriodicTableController::next(
    rt::Cycles t) {
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const auto& levels = tables_->quality_levels();
  std::size_t chosen_qi = 0;
  for (std::size_t qi = levels.size(); qi-- > 0;) {
    if (tables_->acceptable(i_, qi, t, soft_)) {
      chosen_qi = qi;
      break;
    }
  }
  const rt::ActionId action = tables_->action_at(i_);
  ++i_;
  return {action, levels[chosen_qi]};
}

}  // namespace qosctrl::qos

// The QoS controller of Section 2.2.
//
// A controller is consulted once per action: given the elapsed time t
// since the start of the cycle (the paper's cycle-counter register read),
// it returns which action to run next and at which quality level.  The
// caller executes the action, measures its actual cost, and asks again.
//
// Three implementations:
//  * OnlineController  — the abstract algorithm verbatim: per candidate
//    quality q it forms theta_q = theta |>i q, recomputes the EDF
//    schedule alpha_q = Best_Sched(alpha, theta_q, i), and the Quality
//    Manager picks the maximal q with Qual_Const(alpha_q, theta_q, t, i).
//    Handles quality-dependent deadlines.
//  * TableController   — the compiled form produced by the prototype
//    tool: O(|Q|) per step over precomputed slack tables.  Requires
//    quality-independent deadlines; agrees decision-for-decision with
//    OnlineController under that restriction (tested).
//  * ConstantController — the industrial baseline the paper compares
//    against: a fixed quality level and the static EDF order.
//
// DecimatedController wraps any controller and re-decides the quality
// only every `period` actions (holding it in between); period = cycle
// length reproduces the coarse-grain, once-per-cycle control the paper
// contrasts with.
#pragma once

#include <memory>
#include <optional>

#include "qos/slack_tables.h"
#include "rt/parameterized_system.h"

namespace qosctrl::qos {

/// One controller decision: run `action` at quality `quality`.
struct Decision {
  rt::ActionId action = -1;
  rt::QualityLevel quality = 0;
};

/// Limits how fast the chosen quality may *rise* across decisions (the
/// paper's smoothness conditions).  Drops are never limited: safety may
/// require falling straight to qmin.
///
/// The bound compares against the choice taken `stride` decisions ago.
/// stride = 1 is per-decision smoothing; for an unrolled iterative body
/// of m actions, stride = m anchors each action to its own previous
/// iteration (e.g. Motion_Estimate to the previous macroblock's), which
/// is the natural notion for the encoder: per-action constraints such
/// as a tight worst case on one action then do not drag down the
/// anchor of the others.
struct SmoothnessPolicy {
  /// Maximum upward step in quality-index units per stride;
  /// negative means unlimited (smoothness disabled).
  int max_step_up = -1;
  /// How many decisions back the anchor sits (>= 1).
  int stride = 1;
};

/// Common controller interface.  A controller is bound to one
/// parameterized system and walks one cycle (all actions of A) at a
/// time; call start_cycle() to rewind for the next cycle.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Rewinds to step 0 of a fresh cycle.
  virtual void start_cycle() = 0;

  /// Number of decisions taken in the current cycle so far.
  virtual std::size_t step() const = 0;

  /// True when every action of the cycle has been dispatched.
  virtual bool done() const = 0;

  /// Decides the next action and quality given elapsed cycle time t.
  /// Requires !done().  Advances the step.
  virtual Decision next(rt::Cycles t) = 0;

  /// Feedback hook: the actual cost of the action handed out by the
  /// last next() call.  The base controllers ignore it; learning
  /// controllers (qos::AdaptiveController) refine their average-time
  /// estimates from it.
  virtual void observe(rt::Cycles actual_cost) { (void)actual_cost; }

  /// The schedule being followed (fully determined for table/constant
  /// controllers; incrementally refined for the online controller).
  virtual const rt::ExecutionSequence& schedule() const = 0;
};

/// The abstract control algorithm (Scheduler + Quality Manager
/// cooperating per Figure 1), recomputing Best_Sched each step.
class OnlineController : public Controller {
 public:
  /// `sys` must outlive the controller.  `soft` selects the
  /// average-only constraint (soft deadlines, Section 4).
  explicit OnlineController(const rt::ParameterizedSystem& sys,
                            SmoothnessPolicy smoothness = {},
                            bool soft = false);

  void start_cycle() override;
  std::size_t step() const override { return i_; }
  bool done() const override { return i_ >= alpha_.size(); }
  Decision next(rt::Cycles t) override;
  const rt::ExecutionSequence& schedule() const override { return alpha_; }

  /// The quality assignment as refined so far.
  const rt::QualityAssignment& assignment() const { return theta_; }

 private:
  const rt::ParameterizedSystem* sys_;
  SmoothnessPolicy smoothness_;
  bool soft_;
  std::size_t i_ = 0;
  rt::ExecutionSequence alpha_;
  rt::QualityAssignment theta_;
  std::vector<std::size_t> choice_history_;
};

/// The compiled controller: per step, scan quality levels downward and
/// pick the first whose two precomputed slacks admit t.
class TableController : public Controller {
 public:
  /// `tables` is shared so one compiled artifact can drive many
  /// concurrent cycles (e.g. per-frame instances).
  explicit TableController(std::shared_ptr<const SlackTables> tables,
                           SmoothnessPolicy smoothness = {},
                           bool soft = false);

  void start_cycle() override;
  std::size_t step() const override { return i_; }
  bool done() const override { return i_ >= tables_->num_positions(); }
  Decision next(rt::Cycles t) override;
  const rt::ExecutionSequence& schedule() const override {
    return tables_->schedule();
  }

 private:
  std::shared_ptr<const SlackTables> tables_;
  SmoothnessPolicy smoothness_;
  bool soft_;
  std::size_t i_ = 0;
  std::vector<std::size_t> choice_history_;
};

/// Constant-quality baseline ("standard industrial practice"): static
/// EDF schedule, fixed q, no reaction to elapsed time.
class ConstantController : public Controller {
 public:
  ConstantController(const rt::ParameterizedSystem& sys, rt::QualityLevel q);

  void start_cycle() override { i_ = 0; }
  std::size_t step() const override { return i_; }
  bool done() const override { return i_ >= alpha_.size(); }
  Decision next(rt::Cycles t) override;
  const rt::ExecutionSequence& schedule() const override { return alpha_; }

 private:
  rt::QualityLevel q_;
  std::size_t i_ = 0;
  rt::ExecutionSequence alpha_;
};

/// Granularity ablation: consult the inner controller only every
/// `period` actions; hold the last quality in between.
class DecimatedController : public Controller {
 public:
  /// `period` >= 1; period == schedule length means one decision per
  /// cycle (coarse-grain control).
  DecimatedController(std::unique_ptr<Controller> inner, std::size_t period);

  void start_cycle() override;
  std::size_t step() const override { return inner_->step(); }
  bool done() const override { return inner_->done(); }
  Decision next(rt::Cycles t) override;
  const rt::ExecutionSequence& schedule() const override {
    return inner_->schedule();
  }

 private:
  std::unique_ptr<Controller> inner_;
  std::size_t period_;
  std::size_t since_decision_ = 0;
  rt::QualityLevel held_quality_ = 0;
  bool have_held_ = false;
};

}  // namespace qosctrl::qos

// Precomputed suffix-slack tables — the output of the paper's prototype
// tool (Figure 4) that the generic controller consults at run time.
//
// When the deadline order is independent of the quality (the tool's
// stated restriction; we require the slightly stronger and much more
// common property that deadlines themselves are quality-independent),
// the EDF order alpha is fixed once and for all, and both quality
// constraints reduce to comparisons of the elapsed time t against
// precomputed per-position slacks:
//
//   Qual_Const_av(i, q)  <=>  t <= slack_av[i][q]
//     slack_av[i][q] = min_{j>=i} ( D(alpha(j)) - sum_{k=i..j} Cav_q(alpha(k)) )
//   Qual_Const_wc(i, q)  <=>  t <= slack_wc[i][q]
//     slack_wc[i][q] = min( D(alpha(i)), tail_wc[i+1] ) - Cwc_q(alpha(i))
//     tail_wc[i]     = min_{j>=i} ( D(alpha(j)) - sum_{k=i..j} Cwc_qmin(alpha(k)) )
//
// Both tables are built by a single backward sweep per quality level,
// O(n * |Q|) time and space.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "rt/parameterized_system.h"

namespace qosctrl::qos {

/// The compiled controller data: the static EDF schedule plus the two
/// slack tables indexed by [position][quality-index].
class SlackTables {
 public:
  /// Builds the tables from a validated parameterized system.
  /// Requires: sys.validate() empty and quality-independent deadlines.
  static SlackTables build(const rt::ParameterizedSystem& sys);

  const rt::ExecutionSequence& schedule() const { return alpha_; }
  const std::vector<rt::QualityLevel>& quality_levels() const {
    return qualities_;
  }

  std::size_t num_positions() const { return alpha_.size(); }

  /// Slack lookups; `qi` is the index of q in quality_levels().
  rt::Cycles slack_av(std::size_t i, std::size_t qi) const {
    return av_[i][qi];
  }
  rt::Cycles slack_wc(std::size_t i, std::size_t qi) const {
    return wc_[i][qi];
  }

  /// The combined constraint: true when running alpha[i] at quality
  /// index qi is acceptable with elapsed time t.  `soft` drops the
  /// worst-case (safety) half.
  bool acceptable(std::size_t i, std::size_t qi, rt::Cycles t,
                  bool soft = false) const {
    if (t > av_[i][qi]) return false;
    if (soft) return true;
    return t <= wc_[i][qi];
  }

  /// The maximal quality index in [0, hi] acceptable at elapsed time t;
  /// when even index 0 (qmin) fails, returns 0 — the safety fallback,
  /// exactly like the original downward scan.
  ///
  /// Costs are non-decreasing in q (Definition 2.3, enforced by
  /// ParameterizedSystem::validate), so both slack columns are
  /// non-increasing in qi and `acceptable` is downward-closed: true on
  /// a prefix [0, k] of quality indices, false above.  That makes the
  /// decision a predecessor query answerable in O(log|Q|) by binary
  /// search instead of the O(|Q|) downward scan (tested equivalent).
  std::size_t best_quality(std::size_t i, std::size_t hi, rt::Cycles t,
                           bool soft = false) const {
    if (!acceptable(i, 0, t, soft)) return 0;  // qmin fallback
    // Invariant: acceptable at lo, not acceptable at hi + 1.
    std::size_t lo = 0;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (acceptable(i, mid, t, soft)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  /// The largest elapsed time t at which a *fresh* cycle is still
  /// fully safe: running everything at qmin from t meets every
  /// deadline even under worst-case costs.  This is the slack-table
  /// query the farm's admission controller makes — a stream whose
  /// service may start up to L cycles late needs max_initial_delay()
  /// >= L (with the tables paced from service start, L is the
  /// latency window minus the compiled budget).  Negative means the
  /// system is not worst-case schedulable even at qmin.
  rt::Cycles max_initial_delay(bool soft = false) const {
    if (num_positions() == 0) return 0;
    return soft ? av_[0][0] : std::min(av_[0][0], wc_[0][0]);
  }

  /// The quality index an on-time cycle is granted at its first
  /// *quality-sensitive* position, assuming every preceding action ran
  /// at its qmin worst case — the admission controller's prediction of
  /// the quality a candidate budget buys up front.  Later decisions
  /// routinely exceed it, because actual costs run below worst case
  /// and the freed slack accumulates.  (Position 0 itself may be
  /// quality-independent, e.g. the encoder's Grab action, and would
  /// answer qmax regardless of budget.)  Precomputed by build().
  std::size_t initial_quality(bool soft = false) const {
    return soft ? ceiling_soft_ : ceiling_hard_;
  }

  /// Memory footprint of the tables in bytes (reported by the overhead
  /// benchmark, mirroring the paper's <= 1% memory figure).
  std::size_t table_bytes() const;

 private:
  rt::ExecutionSequence alpha_;
  std::vector<rt::QualityLevel> qualities_;
  // av_[i][qi], wc_[i][qi]; i in [0, n)
  std::vector<std::vector<rt::Cycles>> av_;
  std::vector<std::vector<rt::Cycles>> wc_;
  std::size_t ceiling_hard_ = 0;
  std::size_t ceiling_soft_ = 0;
};

}  // namespace qosctrl::qos

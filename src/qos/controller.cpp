#include "qos/controller.h"

#include <algorithm>

#include "qos/qual_const.h"
#include "sched/edf.h"
#include "util/check.h"

namespace qosctrl::qos {
namespace {

/// The Quality Manager's candidate range: indices [0, hi] where hi is
/// the top quality index, lowered by the smoothness policy relative to
/// the choice taken `stride` decisions ago.  Drops are never limited.
std::size_t smoothness_cap(std::size_t top_qi,
                           const SmoothnessPolicy& policy,
                           const std::vector<std::size_t>& history) {
  if (policy.max_step_up < 0) return top_qi;
  QC_EXPECT(policy.stride >= 1, "smoothness stride must be >= 1");
  const auto stride = static_cast<std::size_t>(policy.stride);
  if (history.size() < stride) return top_qi;
  const std::size_t anchor = history[history.size() - stride];
  return std::min(top_qi,
                  anchor + static_cast<std::size_t>(policy.max_step_up));
}

}  // namespace

// ---------------------------------------------------------------------------
// OnlineController

OnlineController::OnlineController(const rt::ParameterizedSystem& sys,
                                   SmoothnessPolicy smoothness, bool soft)
    : sys_(&sys), smoothness_(smoothness), soft_(soft) {
  QC_EXPECT(sys.validate().empty(),
            "parameterized system violates Definition 2.3");
  start_cycle();
}

void OnlineController::start_cycle() {
  i_ = 0;
  choice_history_.clear();
  theta_ = rt::QualityAssignment(sys_->num_actions(), sys_->qmin());
  alpha_ = sched::edf_schedule(sys_->graph(), sys_->deadline_of(theta_));
}

Decision OnlineController::next(rt::Cycles t) {
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const auto& levels = sys_->quality_levels();
  const std::size_t hi =
      smoothness_cap(levels.size() - 1, smoothness_, choice_history_);

  // Quality Manager: maximal q meeting Qual_Const; Scheduler: Best_Sched
  // completion of the committed prefix under theta_q's deadlines.
  std::size_t chosen_qi = 0;  // fallback: qmin
  rt::QualityAssignment chosen_theta =
      theta_.override_suffix(alpha_, i_, levels[0]);
  rt::ExecutionSequence chosen_alpha =
      sched::best_sched(sys_->graph(), sys_->deadline_of(chosen_theta),
                        alpha_, i_);
  for (std::size_t qi = hi + 1; qi-- > 0;) {
    rt::QualityAssignment theta_q =
        theta_.override_suffix(alpha_, i_, levels[qi]);
    rt::ExecutionSequence alpha_q = sched::best_sched(
        sys_->graph(), sys_->deadline_of(theta_q), alpha_, i_);
    if (qual_const(*sys_, alpha_q, theta_q, t, i_, soft_)) {
      chosen_qi = qi;
      chosen_theta = std::move(theta_q);
      chosen_alpha = std::move(alpha_q);
      break;
    }
    if (qi == 0) break;  // keep the qmin fallback computed above
  }

  theta_ = std::move(chosen_theta);
  alpha_ = std::move(chosen_alpha);
  choice_history_.push_back(chosen_qi);
  const rt::ActionId action = alpha_[i_];
  ++i_;
  return Decision{action, levels[chosen_qi]};
}

// ---------------------------------------------------------------------------
// TableController

TableController::TableController(std::shared_ptr<const SlackTables> tables,
                                 SmoothnessPolicy smoothness, bool soft)
    : tables_(std::move(tables)), smoothness_(smoothness), soft_(soft) {
  QC_EXPECT(tables_ != nullptr, "tables must not be null");
}

void TableController::start_cycle() {
  i_ = 0;
  choice_history_.clear();
}

Decision TableController::next(rt::Cycles t) {
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const auto& levels = tables_->quality_levels();
  const std::size_t hi =
      smoothness_cap(levels.size() - 1, smoothness_, choice_history_);

  // O(log|Q|) predecessor query over the monotone slack columns,
  // decision-identical to the original downward scan (qmin fallback
  // included).
  const std::size_t chosen_qi = tables_->best_quality(i_, hi, t, soft_);
  choice_history_.push_back(chosen_qi);
  const rt::ActionId action = tables_->schedule()[i_];
  ++i_;
  return Decision{action, levels[chosen_qi]};
}

// ---------------------------------------------------------------------------
// ConstantController

ConstantController::ConstantController(const rt::ParameterizedSystem& sys,
                                       rt::QualityLevel q)
    : q_(q) {
  QC_EXPECT(sys.has_quality(q), "quality level not in Q");
  alpha_ = sched::edf_schedule(sys.graph(), sys.deadline_of(q));
}

Decision ConstantController::next(rt::Cycles t) {
  (void)t;  // the baseline ignores elapsed time entirely
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const rt::ActionId action = alpha_[i_];
  ++i_;
  return Decision{action, q_};
}

// ---------------------------------------------------------------------------
// DecimatedController

DecimatedController::DecimatedController(std::unique_ptr<Controller> inner,
                                         std::size_t period)
    : inner_(std::move(inner)), period_(period) {
  QC_EXPECT(inner_ != nullptr, "inner controller must not be null");
  QC_EXPECT(period_ >= 1, "decimation period must be >= 1");
}

void DecimatedController::start_cycle() {
  inner_->start_cycle();
  since_decision_ = 0;
  have_held_ = false;
}

Decision DecimatedController::next(rt::Cycles t) {
  QC_EXPECT(!done(), "next() called on a finished cycle");
  if (!have_held_ || since_decision_ >= period_) {
    const Decision d = inner_->next(t);
    held_quality_ = d.quality;
    have_held_ = true;
    since_decision_ = 1;
    return d;
  }
  // Hold the last quality: dispatch the next scheduled action without
  // consulting the quality constraints (this is exactly what makes
  // coarse-grain control slow to react).  The inner controller is still
  // advanced so its position stays in sync; its quality decision for
  // this step is discarded.
  const rt::ActionId action = inner_->schedule()[inner_->step()];
  (void)inner_->next(t);
  ++since_decision_;
  return Decision{action, held_quality_};
}

}  // namespace qosctrl::qos

#include "qos/runner.h"

#include "util/check.h"

namespace qosctrl::qos {

double CycleTrace::mean_quality() const {
  if (steps.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : steps) acc += static_cast<double>(s.quality);
  return acc / static_cast<double>(steps.size());
}

double CycleTrace::budget_utilization(rt::Cycles budget) const {
  if (budget <= 0) return 0.0;
  return static_cast<double>(total_cycles) / static_cast<double>(budget);
}

CycleTrace run_cycle(const rt::ParameterizedSystem& sys,
                     Controller& controller, const CostSource& source) {
  QC_EXPECT(static_cast<bool>(source), "cost source must be callable");
  controller.start_cycle();
  CycleTrace trace;
  rt::Cycles t = 0;
  while (!controller.done()) {
    const Decision d = controller.next(t);
    const rt::Cycles cost = source(d.action, d.quality);
    QC_EXPECT(cost >= 0, "actual execution times are non-negative");
    controller.observe(cost);
    StepTrace step;
    step.action = d.action;
    step.quality = d.quality;
    step.start = t;
    step.cost = cost;
    step.deadline = sys.deadline(d.quality, d.action);
    t += cost;
    step.missed = !rt::is_no_deadline(step.deadline) && t > step.deadline;
    if (step.missed) ++trace.deadline_misses;
    trace.steps.push_back(step);
  }
  trace.total_cycles = t;
  return trace;
}

}  // namespace qosctrl::qos

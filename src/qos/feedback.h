// Feedback-scheduling baseline (related work): a PID controller on
// budget utilization in the style of Lu, Stankovic, Tao, Son,
// "Feedback control real-time scheduling" (Real-Time Systems Journal,
// 2002), which the paper cites as the state of the art it improves on:
// coarse-grain reaction and, crucially, "deadline misses remain
// possible".
//
// The controller picks ONE quality level per cycle, from the PID of the
// utilization error of past cycles (setpoint slightly below 1.0), and
// holds it for the whole cycle.  It never looks at the precomputed
// slack tables and has no worst-case safety term, so it reproduces the
// class of behavior the paper argues against: smooth in steady state,
// but late by at least one full cycle after every load change — which
// the granularity/baseline benches turn into measurable misses.
#pragma once

#include <memory>

#include "qos/controller.h"
#include "rt/parameterized_system.h"

namespace qosctrl::qos {

struct FeedbackConfig {
  double setpoint = 0.9;  ///< target budget utilization
  double kp = 6.0;        ///< proportional gain (in quality levels/unit)
  double ki = 1.5;        ///< integral gain
  double kd = 2.0;        ///< derivative gain
  double integral_clamp = 2.0;  ///< anti-windup bound on the I term
};

/// Per-cycle PID quality selection over a static EDF schedule.
class FeedbackController : public Controller {
 public:
  /// `budget` is the cycle budget the utilization is measured against.
  FeedbackController(const rt::ParameterizedSystem& sys, rt::Cycles budget,
                     FeedbackConfig config = {});

  void start_cycle() override;
  std::size_t step() const override { return i_; }
  bool done() const override { return i_ >= alpha_.size(); }
  Decision next(rt::Cycles t) override;
  void observe(rt::Cycles actual_cost) override;
  const rt::ExecutionSequence& schedule() const override { return alpha_; }

  rt::QualityLevel current_level() const { return levels_[level_index_]; }

 private:
  const rt::ParameterizedSystem* sys_;
  rt::Cycles budget_;
  FeedbackConfig config_;
  std::vector<rt::QualityLevel> levels_;
  rt::ExecutionSequence alpha_;
  std::size_t i_ = 0;
  std::size_t level_index_;
  // PID state over cycles.
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  bool first_cycle_ = true;
  rt::Cycles cycle_cost_ = 0;
};

}  // namespace qosctrl::qos

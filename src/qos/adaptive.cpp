#include "qos/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qosctrl::qos {

AdaptiveController::AdaptiveController(PeriodicBody body,
                                       AdaptiveConfig config, bool soft)
    : profile_(std::move(body)), config_(config), soft_(soft) {
  QC_EXPECT(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
            "EWMA weight must be in (0, 1]");
  QC_EXPECT(config_.min_ratio > 0.0 &&
                config_.min_ratio <= config_.max_ratio,
            "ratio clamp must satisfy 0 < min <= max");
  ratios_.assign(profile_.order.size(), 1.0);
  rebuild_tables();
}

void AdaptiveController::rebuild_tables() {
  PeriodicBody scaled = profile_;
  for (std::size_t qi = 0; qi < scaled.qualities.size(); ++qi) {
    for (std::size_t k = 0; k < scaled.order.size(); ++k) {
      const double learned =
          static_cast<double>(profile_.cav[qi][k]) * ratios_[k];
      // The learned average must stay a valid average: non-negative and
      // below the (untouched) worst case, keeping Definition 2.3 intact.
      scaled.cav[qi][k] = std::clamp<rt::Cycles>(
          static_cast<rt::Cycles>(std::llround(learned)), 0,
          scaled.cwc[qi][k]);
    }
  }
  tables_ = std::make_shared<const PeriodicSlackTables>(
      PeriodicSlackTables::build(scaled));
}

void AdaptiveController::start_cycle() {
  rebuild_tables();  // fold in everything learned during the last cycle
  i_ = 0;
  have_last_ = false;
}

Decision AdaptiveController::next(rt::Cycles t) {
  QC_EXPECT(!done(), "next() called on a finished cycle");
  const auto& levels = tables_->quality_levels();
  std::size_t chosen_qi = 0;
  for (std::size_t qi = levels.size(); qi-- > 0;) {
    if (tables_->acceptable(i_, qi, t, soft_)) {
      chosen_qi = qi;
      break;
    }
  }
  last_k_ = i_ % profile_.order.size();
  last_qi_ = chosen_qi;
  have_last_ = true;
  const rt::ActionId action = tables_->action_at(i_);
  ++i_;
  return Decision{action, levels[chosen_qi]};
}

void AdaptiveController::observe(rt::Cycles actual_cost) {
  if (!have_last_ || actual_cost < 0) return;
  const rt::Cycles profiled = profile_.cav[last_qi_][last_k_];
  if (profiled <= 0) return;  // nothing to scale
  const double sample = std::clamp(
      static_cast<double>(actual_cost) / static_cast<double>(profiled),
      config_.min_ratio, config_.max_ratio);
  ratios_[last_k_] = (1.0 - config_.ewma_alpha) * ratios_[last_k_] +
                     config_.ewma_alpha * sample;
}

const rt::ExecutionSequence& AdaptiveController::schedule() const {
  if (materialized_schedule_.empty()) {
    materialized_schedule_.reserve(tables_->num_positions());
    for (std::size_t i = 0; i < tables_->num_positions(); ++i) {
      materialized_schedule_.push_back(tables_->action_at(i));
    }
  }
  return materialized_schedule_;
}

}  // namespace qosctrl::qos

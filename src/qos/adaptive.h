// Adaptive average-time estimation — the paper's Section 4 future work
// "application of learning techniques for better estimation of the
// average execution times", made concrete.
//
// The quality constraints use two inputs of very different nature:
//  * worst-case times underwrite the SAFETY half (Qual_Const_wc) and
//    must stay conservative — we never touch them;
//  * average times drive the OPTIMALITY half (Qual_Const_av) and are
//    only as good as the profiling run that produced them.  When the
//    deployed content is systematically lighter (or heavier) than the
//    profile, a static table either wastes budget or oscillates.
//
// AdaptiveController therefore learns a per-action cost ratio
// (actual / table-average, EWMA-smoothed, quality-independent because
// content scale is) and rebuilds the *average* half of the compact
// periodic tables from the scaled estimates at every cycle start.
// Safety is untouched: the worst-case tables, and hence Proposition
// 2.1's zero-miss guarantee, are exactly those of the static
// controller (tested under adversarial costs).
#pragma once

#include <memory>
#include <vector>

#include "qos/controller.h"
#include "qos/periodic_tables.h"

namespace qosctrl::qos {

struct AdaptiveConfig {
  /// EWMA weight of a new observation (0 < alpha <= 1).
  double ewma_alpha = 0.05;
  /// Learned ratios are clamped to [min_ratio, max_ratio] so a burst of
  /// outliers cannot zero out or explode the estimates.
  double min_ratio = 0.2;
  double max_ratio = 5.0;
};

/// A Controller that learns average execution times online.
class AdaptiveController : public Controller {
 public:
  /// `body` describes the iterative cycle (same input as the compact
  /// tables); `soft` selects the av-only constraint.
  AdaptiveController(PeriodicBody body, AdaptiveConfig config = {},
                     bool soft = false);

  void start_cycle() override;
  std::size_t step() const override { return i_; }
  bool done() const override { return i_ >= tables_->num_positions(); }
  Decision next(rt::Cycles t) override;
  const rt::ExecutionSequence& schedule() const override;

  /// Feeds back the actual cost of the action returned by the last
  /// next() call.  Updates the EWMA ratio of that body action.
  void observe(rt::Cycles actual_cost) override;

  /// Current learned ratio for body order position k (1.0 = profile).
  double ratio(std::size_t k) const { return ratios_[k]; }

 private:
  void rebuild_tables();

  PeriodicBody profile_;  ///< the static (profiled) body
  AdaptiveConfig config_;
  bool soft_;
  std::vector<double> ratios_;  ///< per body-order position
  std::shared_ptr<const PeriodicSlackTables> tables_;
  std::size_t i_ = 0;
  // Last decision, for observe().
  std::size_t last_k_ = 0;
  std::size_t last_qi_ = 0;
  bool have_last_ = false;
  mutable rt::ExecutionSequence materialized_schedule_;
};

}  // namespace qosctrl::qos

#include "qos/qual_const.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::qos {

using rt::Cycles;

Cycles av_suffix_slack(const rt::ParameterizedSystem& sys,
                       const rt::ExecutionSequence& alpha,
                       const rt::QualityAssignment& theta, std::size_t i) {
  QC_EXPECT(i <= alpha.size(), "step index exceeds schedule length");
  Cycles worst = rt::kNoDeadline;
  Cycles elapsed = 0;
  for (std::size_t j = i; j < alpha.size(); ++j) {
    const rt::ActionId a = alpha[j];
    elapsed = std::min(elapsed + sys.cav(theta, a), rt::kNoDeadline);
    const Cycles d = sys.deadline(theta, a);
    if (rt::is_no_deadline(d)) continue;
    worst = std::min(worst, d - elapsed);
  }
  return worst;
}

Cycles wc_suffix_slack(const rt::ParameterizedSystem& sys,
                       const rt::ExecutionSequence& alpha,
                       const rt::QualityAssignment& theta, std::size_t i) {
  QC_EXPECT(i <= alpha.size(), "step index exceeds schedule length");
  const rt::QualityLevel qmin = sys.qmin();
  Cycles worst = rt::kNoDeadline;
  Cycles elapsed = 0;
  for (std::size_t j = i; j < alpha.size(); ++j) {
    const rt::ActionId a = alpha[j];
    const rt::QualityLevel q = (j == i) ? theta(a) : qmin;
    elapsed = std::min(elapsed + sys.cwc(q, a), rt::kNoDeadline);
    const Cycles d = sys.deadline(q, a);
    if (rt::is_no_deadline(d)) continue;
    worst = std::min(worst, d - elapsed);
  }
  return worst;
}

bool qual_const_av(const rt::ParameterizedSystem& sys,
                   const rt::ExecutionSequence& alpha,
                   const rt::QualityAssignment& theta, Cycles t,
                   std::size_t i) {
  return t <= av_suffix_slack(sys, alpha, theta, i);
}

bool qual_const_wc(const rt::ParameterizedSystem& sys,
                   const rt::ExecutionSequence& alpha,
                   const rt::QualityAssignment& theta, Cycles t,
                   std::size_t i) {
  return t <= wc_suffix_slack(sys, alpha, theta, i);
}

bool qual_const(const rt::ParameterizedSystem& sys,
                const rt::ExecutionSequence& alpha,
                const rt::QualityAssignment& theta, Cycles t, std::size_t i,
                bool soft) {
  if (!qual_const_av(sys, alpha, theta, t, i)) return false;
  if (soft) return true;
  return qual_const_wc(sys, alpha, theta, t, i);
}

}  // namespace qosctrl::qos

// Compact slack tables for iterative programs — the paper's
// "compositional generation of EDF schedules for iterative programs"
// (Section 4, future work) made concrete.
//
// When a cycle is N iterations of an m-action body, every iteration
// shares one deadline (j+1) * p for an integer per-iteration period p,
// and time tables are identical across iterations, both suffix slacks
// have closed forms over body-level prefix sums.  Writing sigma for the
// body's EDF order, c_q(k) for the body cost at order position k,
// R_q(k) = sum_{l>=k} c_q(l) and T_q = R_q(0):
//
//   slack_av(j, k, q) = (j+1) p - Rav_q(k) + (N-1-j) * min(0, p - Tav_q)
//   tail_wc(j, k)     = (j+1) p - Rwc_qmin(k)
//                                + (N-1-j) * min(0, p - Twc_qmin)
//   slack_wc(j, k, q) = min((j+1) p, tail_wc(next position)) - cwc_q(k)
//
// so the controller stores O(m * |Q|) words instead of O(N * m * |Q|)
// — for the paper's 1620-macroblock frames this is the difference
// between ~1 KiB and ~1.8 MiB, and it is what makes the paper's
// "memory overhead not more than 1%" figure reachable.  Values agree
// bit-for-bit with qos::SlackTables (tested).
#pragma once

#include <memory>
#include <vector>

#include "rt/parameterized_system.h"

namespace qosctrl::qos {

/// Body-level description of an iterative cycle.
struct PeriodicBody {
  /// EDF order of the body's actions (body action ids).
  rt::ExecutionSequence order;
  std::vector<rt::QualityLevel> qualities;
  /// cav[qi][k] / cwc[qi][k]: cost of the action at *order position* k.
  std::vector<std::vector<rt::Cycles>> cav;
  std::vector<std::vector<rt::Cycles>> cwc;
  rt::Cycles period = 0;  ///< per-iteration deadline increment p
  int iterations = 1;     ///< N
};

/// O(m * |Q|)-memory equivalent of SlackTables for periodic cycles.
class PeriodicSlackTables {
 public:
  /// Builds the prefix sums.  Requires a well-formed body: equal table
  /// sizes, positive period, iterations >= 1, Cav <= Cwc, monotone.
  static PeriodicSlackTables build(const PeriodicBody& body);

  std::size_t body_size() const { return body_.order.size(); }
  int iterations() const { return body_.iterations; }
  std::size_t num_positions() const {
    return body_size() * static_cast<std::size_t>(body_.iterations);
  }
  const std::vector<rt::QualityLevel>& quality_levels() const {
    return body_.qualities;
  }

  /// Unrolled action id at schedule position i (iteration-major).
  rt::ActionId action_at(std::size_t i) const;

  /// Deadline of schedule position i.
  rt::Cycles deadline_at(std::size_t i) const;

  /// Closed-form slacks; agree exactly with SlackTables on the
  /// equivalent unrolled system.
  rt::Cycles slack_av(std::size_t i, std::size_t qi) const;
  rt::Cycles slack_wc(std::size_t i, std::size_t qi) const;

  bool acceptable(std::size_t i, std::size_t qi, rt::Cycles t,
                  bool soft = false) const {
    if (t > slack_av(i, qi)) return false;
    if (soft) return true;
    return t <= slack_wc(i, qi);
  }

  /// Persistent storage footprint in bytes (the embedded artifact).
  std::size_t table_bytes() const;

 private:
  PeriodicBody body_;
  // rav_[qi][k] = sum of cav over order positions >= k; tav_[qi] = rav_[qi][0]
  std::vector<std::vector<rt::Cycles>> rav_;
  std::vector<rt::Cycles> tav_;
  std::vector<rt::Cycles> rwc0_;  // qmin worst-case suffix sums
  rt::Cycles twc0_ = 0;
};

/// Drop-in controller over the compact tables.  Mirrors
/// TableController's decision rule; the full schedule is synthesized
/// lazily only if a caller asks for it (host-side convenience — the
/// embedded artifact never stores it).
class PeriodicTableController {
 public:
  explicit PeriodicTableController(
      std::shared_ptr<const PeriodicSlackTables> tables, bool soft = false);

  void start_cycle() { i_ = 0; }
  std::size_t step() const { return i_; }
  bool done() const { return i_ >= tables_->num_positions(); }

  /// Decides (action, quality) for elapsed cycle time t.
  std::pair<rt::ActionId, rt::QualityLevel> next(rt::Cycles t);

 private:
  std::shared_ptr<const PeriodicSlackTables> tables_;
  bool soft_;
  std::size_t i_ = 0;
};

}  // namespace qosctrl::qos

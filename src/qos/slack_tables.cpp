#include "qos/slack_tables.h"

#include <algorithm>

#include "sched/edf.h"
#include "util/check.h"

namespace qosctrl::qos {

using rt::Cycles;

SlackTables SlackTables::build(const rt::ParameterizedSystem& sys) {
  QC_EXPECT(sys.validate().empty(),
            "parameterized system violates Definition 2.3");
  QC_EXPECT(sys.deadlines_quality_independent(),
            "slack tables require quality-independent deadlines");

  SlackTables out;
  out.qualities_ = sys.quality_levels();
  const rt::DeadlineFunction d = sys.deadline_of(sys.qmin());
  out.alpha_ = sched::edf_schedule(sys.graph(), d);

  const std::size_t n = out.alpha_.size();
  const std::size_t nq = out.qualities_.size();
  out.av_.assign(n, std::vector<Cycles>(nq, 0));
  out.wc_.assign(n, std::vector<Cycles>(nq, 0));

  // tail_wc[i] = min_{j>=i} (D(alpha(j)) - sum_{k=i..j} Cwc_qmin(alpha(k)))
  // computed with tail_wc[n] = +inf by the same backward recurrence as
  // the av table.
  std::vector<Cycles> tail_wc(n + 1, rt::kNoDeadline);
  const rt::QualityLevel qmin = sys.qmin();
  for (std::size_t i = n; i-- > 0;) {
    const rt::ActionId a = out.alpha_[i];
    tail_wc[i] = std::min(d(a), tail_wc[i + 1]) - sys.cwc(qmin, a);
    tail_wc[i] = std::min(tail_wc[i], rt::kNoDeadline);
  }

  for (std::size_t qi = 0; qi < nq; ++qi) {
    const rt::QualityLevel q = out.qualities_[qi];
    Cycles av_suffix = rt::kNoDeadline;  // slack_av[i+1][qi]
    for (std::size_t i = n; i-- > 0;) {
      const rt::ActionId a = out.alpha_[i];
      av_suffix = std::min(d(a), av_suffix) - sys.cav(q, a);
      av_suffix = std::min(av_suffix, rt::kNoDeadline);
      out.av_[i][qi] = av_suffix;
      out.wc_[i][qi] =
          std::min(std::min(d(a), tail_wc[i + 1]), rt::kNoDeadline) -
          sys.cwc(q, a);
    }
  }

  // Predicted quality ceiling: walk the schedule at qmin worst case
  // until the first action whose cost depends on the quality level,
  // and ask the tables for the best level grantable there.  Bodies
  // with no quality-sensitive action can always run at qmax.
  out.ceiling_hard_ = out.ceiling_soft_ = nq - 1;
  Cycles elapsed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const rt::ActionId a = out.alpha_[i];
    bool sensitive = false;
    for (std::size_t qi = 1; qi < nq; ++qi) {
      if (sys.cwc(out.qualities_[qi], a) != sys.cwc(qmin, a) ||
          sys.cav(out.qualities_[qi], a) != sys.cav(qmin, a)) {
        sensitive = true;
        break;
      }
    }
    if (sensitive) {
      out.ceiling_hard_ = out.best_quality(i, nq - 1, elapsed, false);
      out.ceiling_soft_ = out.best_quality(i, nq - 1, elapsed, true);
      break;
    }
    elapsed += sys.cwc(qmin, a);
  }
  return out;
}

std::size_t SlackTables::table_bytes() const {
  std::size_t bytes = alpha_.size() * sizeof(rt::ActionId) +
                      qualities_.size() * sizeof(rt::QualityLevel);
  for (const auto& row : av_) bytes += row.size() * sizeof(Cycles);
  for (const auto& row : wc_) bytes += row.size() * sizeof(Cycles);
  return bytes;
}

}  // namespace qosctrl::qos

// The end-to-end video system of Figure 3: a camera producing a frame
// every P cycles into an input buffer of size K, the encoder consuming
// frames one at a time, and frame skips when the input buffer is full.
//
// Timing model (single-threaded encoder, event-driven simulation):
//  * frame f arrives at a_f = f * P;
//  * the encoder pops the oldest buffered frame as soon as it is free;
//  * an arrival finding K frames buffered is dropped (a frame skip) —
//    the decoder then re-displays the previous output frame, which is
//    how skipped frames get their (low) PSNR score;
//  * a popped frame's deadline is a_f + K * P (the paper's "maximal
//    latency P*K"), so the controlled encoder's per-frame budget is
//    K * P measured from arrival — "in average P" for K = 1 because a
//    safe controller is always free again by the next arrival.
//
// The controlled encoder measures elapsed time from the frame's
// *arrival* when it starts on time.  A frame that starts late (buffer
// occupancy, K > 1) is *re-paced*: its per-action deadlines are spread
// over the remaining window max(arrival, start) .. arrival + K * P and
// elapsed time is measured from the actual start, so backlog shrinks
// the budget without leaving already-expired early deadlines behind —
// the paced-from-arrival artifact that used to log spurious
// intermediate misses while the display deadline a_f + K * P still
// held.  Re-paced systems are compiled on demand and cached per
// remaining budget; set PipelineConfig::repace_on_backlog = false to
// reproduce the old behavior.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "encoder/frame_encoder.h"
#include "encoder/rate_control.h"
#include "encoder/system_builder.h"
#include "media/synthetic_video.h"
#include "qos/adaptive.h"
#include "qos/controller.h"
#include "qos/feedback.h"

namespace qosctrl::pipe {

enum class ControlMode {
  kControlled,       ///< fine-grain QoS controller (table-driven)
  kConstantQuality,  ///< the paper's industrial baseline
  kFeedback,         ///< per-cycle PID on utilization (Lu et al. style)
};

struct PipelineConfig {
  media::VideoConfig video{};   ///< 582 frames, 9 scenes by default
  int buffer_capacity = 1;      ///< the paper's K
  /// Camera period P in virtual cycles.  The default retargets the
  /// paper's 320 Mcycle PAL budget to QCIF (99 macroblocks):
  /// 320e6 * 99 / 1620, rounded up to a multiple of 99 so the compact
  /// periodic controller tables apply exactly.
  rt::Cycles frame_period = 19555569;
  ControlMode mode = ControlMode::kControlled;
  rt::QualityLevel constant_quality = 3;  ///< for kConstantQuality
  qos::SmoothnessPolicy smoothness{};     ///< optional smoothness bound
  bool soft_deadlines = false;            ///< av-only constraint
  std::size_t decimation = 1;  ///< consult controller every k actions
  bool use_online_controller = false;  ///< bypass the compiled tables
  /// Learn average execution times online (qos::AdaptiveController;
  /// the paper's Section 4 learning extension).  Requires the default
  /// periodic geometry; ignored when combined with online mode.
  bool use_adaptive_controller = false;
  qos::AdaptiveConfig adaptive{};
  qos::FeedbackConfig feedback{};  ///< for ControlMode::kFeedback
  /// Re-pace a late-starting frame's deadlines over the remaining
  /// window (see the header comment).  Applies to the table-driven,
  /// online, and constant controllers; the adaptive and feedback
  /// controllers carry state across frames and keep arrival pacing.
  bool repace_on_backlog = true;
  std::uint64_t seed = 42;     ///< cost-model jitter stream
  enc::EncoderConfig encoder{};
  enc::RateControlConfig rate{};
  platform::CostModelConfig cost{};
};

/// Per-camera-frame outcome.
struct FrameRecord {
  int index = 0;
  bool skipped = false;
  bool scene_cut = false;
  /// The viewer saw stale output for this frame: its encoding was
  /// lost, aborted, or never serviced (fault injection — disjoint
  /// from `skipped`, which is the camera dropping an arrival).
  bool concealed = false;
  bool overrun = false;  ///< injected WCET overrun (inflated demand)
  bool aborted = false;  ///< cut off at the committed budget
  bool lost = false;     ///< encoded output dropped before the decoder
  rt::Cycles encode_cycles = 0;  ///< 0 for skipped frames
  /// encode_cycles split over the four EncodePhase stages.  Attributes
  /// the honest encode work: policer cut-offs and overrun inflation
  /// adjust encode_cycles but never the phase split.
  std::array<rt::Cycles, enc::kNumEncodePhases> phase_cycles{};
  rt::Cycles start_lag = 0;      ///< start - arrival (buffer wait)
  double psnr = 0.0;             ///< vs displayed output
  double ssim = 0.0;             ///< vs displayed output
  std::int64_t bits = 0;
  double mean_quality = 0.0;
  rt::QualityLevel min_quality = 0;
  rt::QualityLevel max_quality = 0;
  int quality_change_sum = 0;  ///< sum |dq| between consecutive MBs
  int deadline_misses = 0;
  int qp = 0;
  int intra_macroblocks = 0;
};

/// Distribution summary of a per-frame quality series (PSNR or SSIM)
/// over every displayed frame, skips included — skipped frames
/// re-display stale output, and their low scores are exactly the
/// quality cost a policy comparison must see.  p5 is the 5th
/// percentile (sorted ascending, index floor((n-1)/20)): the tail
/// quality a viewer actually experiences under churn.
struct QualitySeriesStats {
  double mean = 0.0;
  double p5 = 0.0;
  double min = 0.0;
};

struct PipelineResult {
  std::vector<FrameRecord> frames;
  int total_skips = 0;
  /// Frames the viewer saw stale output for (losses, policer aborts,
  /// blackout drops); disjoint from total_skips.
  int total_concealed = 0;
  int total_deadline_misses = 0;
  double mean_psnr = 0.0;          ///< over all frames incl. skipped
  double mean_psnr_encoded = 0.0;  ///< over encoded frames only
  double mean_ssim = 0.0;          ///< over all frames incl. skipped
  QualitySeriesStats psnr_stats;   ///< mean/p5/min over all frames
  QualitySeriesStats ssim_stats;
  double mean_encode_cycles = 0.0;
  /// Total cycles per EncodePhase over encoded frames — the profiling
  /// breakdown surfaced in reports and trace counter tracks.
  std::array<long long, enc::kNumEncodePhases> phase_cycles{};
  std::int64_t total_bits = 0;
  double achieved_bps = 0.0;
  double mean_quality = 0.0;  ///< over encoded frames
  /// Mean of the paper's optimality metric encode_cycles / budget over
  /// encoded frames.
  double mean_budget_utilization = 0.0;
};

/// One stream's encoding state — video source, encoder, rate control,
/// and QoS controller — factored out of run_pipeline so that a farm of
/// concurrent streams can drive many sessions from its own scheduler.
///
/// The service `budget` the controller tables are paced over defaults
/// to the latency window K * P (the single-stream pipeline, elapsed
/// time measured from frame arrival).  A farm instead reserves a
/// smaller budget B <= K * P and measures elapsed time from *service
/// start* (t0 = 0): the controller then guarantees completion within B
/// of starting, leaving K * P - B of queueing tolerance for the
/// processor — see farm::AdmissionController.
class StreamSession {
 public:
  /// Builds every component from the config.  `budget` == 0 selects
  /// the default K * P.  A prebuilt `system` (compiled for the same
  /// geometry and budget) may be shared across sessions to avoid
  /// recompiling identical slack tables per stream.
  explicit StreamSession(
      const PipelineConfig& config, rt::Cycles budget = 0,
      std::shared_ptr<const enc::EncoderSystem> system = nullptr);

  /// Encodes camera frame `index`; `t0` is the elapsed time already
  /// consumed when the encoder starts (the buffer wait in the
  /// single-stream pipeline; 0 in the farm, whose tables are paced
  /// from service start).  With repace_on_backlog (the default) a
  /// positive `t0` re-paces this frame's deadlines over the remaining
  /// budget() - t0 and measures elapsed time from the actual start.
  FrameRecord encode(int index, rt::Cycles t0);

  /// Records camera frame `index` as dropped (input buffer full): the
  /// decoder re-displays the previous output, which scores its PSNR.
  FrameRecord skip(int index);

  /// Replaces the compiled system (same geometry, different budget)
  /// and rebuilds the controller over it — the farm's online budget
  /// renegotiation path: subsequent frames are paced over the new
  /// budget.  Requires a controller that carries no state across
  /// frames (table, online, or constant — the same set that may
  /// re-pace); the encoder, rate control, and video state persist.
  void switch_system(std::shared_ptr<const enc::EncoderSystem> system);

  /// Routes quality scoring through a real decode of the emitted
  /// bitstream (enc::decode_frame) against the decoder's own
  /// reference chain, so loss and concealment are measured against
  /// what a viewer displays — stale-reference propagation included.
  /// Off by default: without faults the decode is bit-exact with the
  /// encoder's reconstruction and every score is unchanged, so
  /// fault-free runs skip the decode cost entirely.
  void track_delivery() { track_delivery_ = true; }
  bool tracking_delivery() const { return track_delivery_; }

  /// Marks the record encode() just produced as delivered.  With
  /// tracking, decodes the encoder's bitstream and re-scores
  /// PSNR/SSIM against the decoded picture; a malformed or
  /// unreferenced decode degrades to concealment instead of crashing.
  FrameRecord deliver(FrameRecord rec);

  /// Marks the record encode() just produced as *not* delivered (a
  /// post-encode loss, a policer abort, or a frame lost in flight to
  /// a processor failure): the viewer re-displays the previous
  /// output, and the decoder keeps predicting from that stale
  /// reference until the next intra re-sync.
  FrameRecord lose(FrameRecord rec);

  /// Records camera frame `index` as never serviced (quarantine, or a
  /// dead / blacked-out processor): zero cycles, stale display.  Like
  /// skip(), but attributed to a fault rather than the camera.
  FrameRecord drop(int index);

  /// Forgets the encoder's temporal reference (processor repair after
  /// a blackout): the next encoded frame is forced intra, which is
  /// also what re-syncs the tracked decoder chain.
  void reset_reference();

  const enc::EncoderSystem& system() const { return *system_; }
  rt::Cycles budget() const { return system_->budget; }
  const media::SyntheticVideo& video() const { return video_; }
  const PipelineConfig& config() const { return config_; }

 private:
  /// Scores `rec` against what the viewer currently displays: the
  /// decoder chain's last output when tracking, the encoder's
  /// reconstruction otherwise (the skip() scoring path).
  void score_against_display(FrameRecord* rec) const;
  /// True when the configured controller holds no cross-frame state
  /// and may be rebuilt at will (table / online / constant).
  bool stateless_controller() const;
  /// stateless_controller() gated by the repace_on_backlog knob.
  bool repace_eligible() const;
  /// Recomputes min_repace_budget_ from the current system (see the
  /// constructor comment).
  void recompute_min_repace_budget();
  /// The encoder system re-paced over `remaining` cycles from service
  /// start (compiled on demand, cached by remaining budget).
  const enc::EncoderSystem& repaced_system(rt::Cycles remaining);

  PipelineConfig config_;
  media::SyntheticVideo video_;
  std::shared_ptr<const enc::EncoderSystem> system_;
  enc::FrameEncoder encoder_;
  enc::RateController rate_;
  std::unique_ptr<qos::Controller> controller_;
  /// Re-paced systems keyed by the remaining budget rounded down to a
  /// 64-bucket grid of the session budget (cost-model jitter makes
  /// exact lags unique, so the grid is what makes the cache hit; see
  /// repaced_system).
  std::map<rt::Cycles, std::shared_ptr<const enc::EncoderSystem>> repaced_;
  /// Smallest remaining window that is qmin-WC schedulable; shorter
  /// backlogged frames keep arrival pacing (see the constructor).
  rt::Cycles min_repace_budget_ = 0;
  bool track_delivery_ = false;
  /// The decoder chain's displayed frame (and inter-prediction
  /// reference) when tracking; empty before the first delivery.
  std::optional<media::YuvFrame> displayed_;
};

/// Runs the full system simulation.
PipelineResult run_pipeline(const PipelineConfig& config);

/// Aggregates per-frame records into the summary statistics (the tail
/// of run_pipeline; reused by the farm for per-stream metrics).
/// `budget` is the per-frame budget utilization is measured against.
PipelineResult aggregate_records(std::vector<FrameRecord> frames,
                                 rt::Cycles budget, double frame_rate);

/// Summary line (skips, misses, PSNR, bitrate) for quick inspection.
std::string summarize(const PipelineResult& result);

}  // namespace qosctrl::pipe

#include "pipeline/simulation.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

#include "encoder/decoder.h"
#include "quality/distortion.h"
#include "util/check.h"

namespace qosctrl::pipe {
namespace {

std::unique_ptr<qos::Controller> make_controller(
    const PipelineConfig& config, const enc::EncoderSystem& es) {
  std::unique_ptr<qos::Controller> ctl;
  switch (config.mode) {
    case ControlMode::kControlled:
      if (config.use_online_controller) {
        ctl = std::make_unique<qos::OnlineController>(
            *es.system, config.smoothness, config.soft_deadlines);
      } else if (config.use_adaptive_controller) {
        QC_EXPECT(es.body != nullptr,
                  "adaptive control requires the periodic geometry "
                  "(frame budget divisible by the macroblock count)");
        ctl = std::make_unique<qos::AdaptiveController>(
            *es.body, config.adaptive, config.soft_deadlines);
      } else {
        ctl = std::make_unique<qos::TableController>(
            es.tables, config.smoothness, config.soft_deadlines);
      }
      break;
    case ControlMode::kConstantQuality:
      ctl = std::make_unique<qos::ConstantController>(
          *es.system, config.constant_quality);
      break;
    case ControlMode::kFeedback:
      ctl = std::make_unique<qos::FeedbackController>(*es.system, es.budget,
                                                      config.feedback);
      break;
  }
  if (config.decimation > 1) {
    ctl = std::make_unique<qos::DecimatedController>(std::move(ctl),
                                                     config.decimation);
  }
  return ctl;
}

int macroblock_count(const PipelineConfig& config) {
  return (config.video.width / media::kMacroBlockSize) *
         (config.video.height / media::kMacroBlockSize);
}

enc::FrameEncoder make_encoder(const PipelineConfig& config) {
  // Per-module RNG streams are forked (not split) from the seed so the
  // jitter stream is a pure function of (seed, stream id) — farm
  // sessions built on different worker threads stay bit-identical.
  util::Rng rng(config.seed);
  platform::CostModel cost_model(platform::figure5_cost_table(), config.cost,
                                 rng.fork(0));
  enc::EncoderConfig encoder_config = config.encoder;
  encoder_config.width = config.video.width;  // geometry follows the video
  encoder_config.height = config.video.height;
  return enc::FrameEncoder(encoder_config, std::move(cost_model));
}

}  // namespace

StreamSession::StreamSession(const PipelineConfig& config, rt::Cycles budget,
                             std::shared_ptr<const enc::EncoderSystem> system)
    : config_(config),
      video_(config.video),
      system_(std::move(system)),
      encoder_(make_encoder(config)),
      rate_(config.rate) {
  QC_EXPECT(config.buffer_capacity >= 1, "buffer capacity K must be >= 1");
  QC_EXPECT(config.frame_period > 0, "frame period P must be positive");
  QC_EXPECT(config.decimation >= 1, "decimation must be >= 1");
  if (budget == 0) {
    budget = config.frame_period * config.buffer_capacity;  // K * P
  }
  if (system_ == nullptr) {
    system_ = std::make_shared<const enc::EncoderSystem>(
        enc::build_encoder_system(macroblock_count(config), budget,
                                  platform::figure5_cost_table()));
  }
  QC_EXPECT(system_->macroblocks == macroblock_count(config),
            "shared encoder system geometry must match the video");
  QC_EXPECT(system_->budget == budget,
            "shared encoder system budget must match the session budget");
  controller_ = make_controller(config_, *system_);
  recompute_min_repace_budget();
}

void StreamSession::recompute_min_repace_budget() {
  // Smallest re-pace window that is still worst-case schedulable at
  // qmin: with evenly paced deadlines D(j) = B * (j+1) / m and a
  // uniform per-iteration qmin worst case W, every prefix constraint
  // W * (j+1) <= floor(B * (j+1) / m) reduces to B >= W * m — the
  // total qmin worst case of the unrolled system.  A frame whose
  // backlog leaves less than this keeps arrival pacing (only possible
  // for uncontrolled encoders, which overrun arbitrarily).
  min_repace_budget_ = 0;
  const rt::TimeFunction qmin_wc =
      system_->system->cwc_of(system_->system->qmin());
  for (const rt::Cycles c : qmin_wc.values()) {
    min_repace_budget_ += c;
  }
}

void StreamSession::switch_system(
    std::shared_ptr<const enc::EncoderSystem> system) {
  QC_EXPECT(system != nullptr, "cannot switch to a null encoder system");
  QC_EXPECT(system->macroblocks == macroblock_count(config_),
            "switched encoder system geometry must match the video");
  QC_EXPECT(stateless_controller(),
            "budget switching requires a controller without "
            "cross-frame state (table, online, or constant)");
  system_ = std::move(system);
  controller_ = make_controller(config_, *system_);
  repaced_.clear();  // keyed by the old budget's bucket grid
  recompute_min_repace_budget();
}

bool StreamSession::stateless_controller() const {
  switch (config_.mode) {
    case ControlMode::kControlled:
      // Table and online controllers hold no cross-frame state, so a
      // fresh instance over the re-paced system decides exactly as a
      // long-lived one would.  The adaptive controller learns average
      // times across frames (and needs the periodic geometry), so it
      // keeps arrival pacing.
      return !config_.use_adaptive_controller;
    case ControlMode::kConstantQuality:
      return true;  // stateless; only the miss accounting is affected
    case ControlMode::kFeedback:
      return false;  // the PID carries state across frames
  }
  return false;
}

bool StreamSession::repace_eligible() const {
  return config_.repace_on_backlog && stateless_controller();
}

const enc::EncoderSystem& StreamSession::repaced_system(rt::Cycles remaining) {
  // Cost-model jitter makes every backlog lag unique, so caching by
  // the exact remaining window would never hit.  Quantize the window
  // *down* to one of 64 buckets of the session budget instead:
  // pacing over a slightly smaller window is strictly conservative
  // (deadlines only move earlier, the display deadline still holds),
  // and the cache is bounded by the bucket count.
  const rt::Cycles quantum = std::max<rt::Cycles>(1, budget() / 64);
  remaining = std::max(min_repace_budget_, remaining / quantum * quantum);
  auto it = repaced_.find(remaining);
  if (it == repaced_.end()) {
    it = repaced_
             .emplace(remaining,
                      std::make_shared<const enc::EncoderSystem>(
                          enc::build_encoder_system(
                              macroblock_count(config_), remaining,
                              platform::figure5_cost_table())))
             .first;
  }
  return *it->second;
}

FrameRecord StreamSession::encode(int index, rt::Cycles t0) {
  const media::YuvFrame input = video_.frame_yuv(index);

  // Late start under backlog: re-pace this frame's deadlines over the
  // remaining window instead of entering arrival-paced tables with
  // already-expired early deadlines.  When the backlog has consumed
  // the whole window (possible only for uncontrolled encoders) there
  // is nothing left to pace over and the arrival-paced path keeps the
  // miss accounting honest.
  const enc::EncoderSystem* sys = system_.get();
  qos::Controller* controller = controller_.get();
  rt::Cycles elapsed = t0;
  std::unique_ptr<qos::Controller> repaced_controller;
  if (t0 > 0 && budget() > t0 &&
      budget() - t0 >= min_repace_budget_ && repace_eligible()) {
    sys = &repaced_system(budget() - t0);
    repaced_controller = make_controller(config_, *sys);
    controller = repaced_controller.get();
    elapsed = 0;
  }

  const enc::FrameStats stats = encoder_.encode_frame(
      input, *controller, *sys->system, rate_.qp(), elapsed);
  rate_.frame_encoded(stats.bits);

  FrameRecord rec;
  rec.index = index;
  rec.scene_cut = video_.is_scene_cut(index);
  rec.encode_cycles = stats.encode_cycles;
  rec.phase_cycles = stats.phase_cycles;
  rec.start_lag = t0;
  rec.psnr = stats.psnr;
  rec.ssim = stats.ssim;
  rec.bits = stats.bits;
  rec.mean_quality = stats.mean_quality;
  rec.min_quality = stats.min_quality;
  rec.max_quality = stats.max_quality;
  rec.quality_change_sum = stats.quality_change_sum;
  rec.deadline_misses = stats.deadline_misses;
  rec.qp = stats.qp;
  rec.intra_macroblocks = stats.intra_macroblocks;
  return rec;
}

FrameRecord StreamSession::skip(int index) {
  FrameRecord rec;
  rec.index = index;
  rec.skipped = true;
  rec.scene_cut = video_.is_scene_cut(index);
  rec.qp = rate_.qp();
  // The decoder re-displays the previous output frame.
  score_against_display(&rec);
  rate_.frame_skipped();
  return rec;
}

void StreamSession::score_against_display(FrameRecord* rec) const {
  const media::Frame input = video_.frame(rec->index);
  if (track_delivery_) {
    if (!displayed_) return;  // nothing ever displayed: scores stay 0
    const quality::FrameDistortion d = quality::measure(input, displayed_->y);
    rec->psnr = d.psnr;
    rec->ssim = d.ssim;
    return;
  }
  if (encoder_.has_reference()) {
    const quality::FrameDistortion d =
        quality::measure(input, encoder_.reconstructed().y);
    rec->psnr = d.psnr;
    rec->ssim = d.ssim;
  }
}

FrameRecord StreamSession::deliver(FrameRecord rec) {
  if (!track_delivery_) return rec;
  enc::DecodeResult d = enc::decode_frame(
      encoder_.bitstream(), displayed_ ? &*displayed_ : nullptr);
  if (!d.ok) {
    // Un-decodable at the receiver (e.g. an inter frame whose
    // reference never survived to the decoder): conceal instead of
    // crashing — the viewer keeps the previous picture.
    rec.concealed = true;
    score_against_display(&rec);
    return rec;
  }
  displayed_ = std::move(d.frame);
  // Re-score against the *decoded* picture.  While encoder and
  // decoder references agree the decode is bit-exact with the
  // encoder's reconstruction and the scores are unchanged; after a
  // concealment the decoder predicts from its stale reference, and
  // the drift measured here is the real propagation cost.
  const quality::FrameDistortion dist =
      quality::measure(video_.frame(rec.index), displayed_->y);
  rec.psnr = dist.psnr;
  rec.ssim = dist.ssim;
  return rec;
}

FrameRecord StreamSession::lose(FrameRecord rec) {
  rec.concealed = true;
  score_against_display(&rec);
  return rec;
}

FrameRecord StreamSession::drop(int index) {
  FrameRecord rec;
  rec.index = index;
  rec.concealed = true;
  rec.scene_cut = video_.is_scene_cut(index);
  rec.qp = rate_.qp();
  score_against_display(&rec);
  rate_.frame_skipped();
  return rec;
}

void StreamSession::reset_reference() { encoder_.reset_reference(); }

PipelineResult run_pipeline(const PipelineConfig& config) {
  StreamSession session(config);
  const rt::Cycles period = config.frame_period;
  const rt::Cycles budget = session.budget();

  std::vector<FrameRecord> frames(
      static_cast<std::size_t>(config.video.num_frames));
  rt::Cycles free_at = 0;  // when the encoder finishes its current frame
  std::deque<int> buffered;

  auto encode_one = [&](int g) {
    const rt::Cycles arrival = static_cast<rt::Cycles>(g) * period;
    const rt::Cycles start = std::max(free_at, arrival);
    FrameRecord rec = session.encode(g, start - arrival);
    free_at = start + rec.encode_cycles;
    frames[static_cast<std::size_t>(g)] = rec;
  };

  for (int f = 0; f < config.video.num_frames; ++f) {
    const rt::Cycles arrival = static_cast<rt::Cycles>(f) * period;
    // Let the encoder drain whatever it can before this arrival.
    while (!buffered.empty() && free_at <= arrival) {
      const int g = buffered.front();
      buffered.pop_front();
      encode_one(g);
    }
    if (static_cast<int>(buffered.size()) >= config.buffer_capacity) {
      // Input buffer full: the camera drops this frame.
      frames[static_cast<std::size_t>(f)] = session.skip(f);
      continue;
    }
    buffered.push_back(f);
  }
  while (!buffered.empty()) {
    const int g = buffered.front();
    buffered.pop_front();
    encode_one(g);
  }

  return aggregate_records(std::move(frames), budget,
                           config.rate.frame_rate);
}

namespace {

/// mean / 5th percentile / min of a per-frame quality series.
QualitySeriesStats series_stats(std::vector<double> values) {
  QualitySeriesStats s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.p5 = values[(values.size() - 1) / 20];
  return s;
}

}  // namespace

PipelineResult aggregate_records(std::vector<FrameRecord> frames,
                                 rt::Cycles budget, double frame_rate) {
  PipelineResult result;
  result.frames = std::move(frames);

  double psnr_enc = 0.0, cycles = 0.0, quality = 0.0;
  double util = 0.0;
  int encoded = 0;
  std::vector<double> psnr_series, ssim_series;
  psnr_series.reserve(result.frames.size());
  ssim_series.reserve(result.frames.size());
  for (const FrameRecord& rec : result.frames) {
    psnr_series.push_back(rec.psnr);
    ssim_series.push_back(rec.ssim);
    result.total_deadline_misses += rec.deadline_misses;
    if (rec.concealed) ++result.total_concealed;
    if (rec.skipped) {
      ++result.total_skips;
      continue;
    }
    // Concealed frames that never reached the encoder (quarantine and
    // blackout drops) carry no cycles, bits, or quality decisions;
    // like skips, they only contribute their stale-display scores.
    if (rec.concealed && rec.encode_cycles == 0) continue;
    ++encoded;
    psnr_enc += rec.psnr;
    cycles += static_cast<double>(rec.encode_cycles);
    for (std::size_t ph = 0; ph < rec.phase_cycles.size(); ++ph) {
      result.phase_cycles[ph] += static_cast<long long>(rec.phase_cycles[ph]);
    }
    quality += rec.mean_quality;
    result.total_bits += rec.bits;
    util += static_cast<double>(rec.encode_cycles) /
            static_cast<double>(budget);
  }
  result.psnr_stats = series_stats(std::move(psnr_series));
  result.ssim_stats = series_stats(std::move(ssim_series));
  result.mean_psnr = result.psnr_stats.mean;
  result.mean_ssim = result.ssim_stats.mean;
  const int n = static_cast<int>(result.frames.size());
  if (encoded > 0) {
    result.mean_psnr_encoded = psnr_enc / encoded;
    result.mean_encode_cycles = cycles / encoded;
    result.mean_quality = quality / encoded;
    result.mean_budget_utilization = util / encoded;
  }
  const double seconds = frame_rate > 0.0 ? static_cast<double>(n) / frame_rate
                                          : 0.0;
  result.achieved_bps =
      seconds > 0.0 ? static_cast<double>(result.total_bits) / seconds : 0.0;
  return result;
}

std::string summarize(const PipelineResult& result) {
  std::ostringstream os;
  os << "frames=" << result.frames.size()
     << " skips=" << result.total_skips
     << " deadline_misses=" << result.total_deadline_misses
     << " mean_psnr=" << result.mean_psnr
     << " mean_psnr_encoded=" << result.mean_psnr_encoded
     << " mean_ssim=" << result.mean_ssim
     << " psnr_p5=" << result.psnr_stats.p5
     << " mean_encode_Mcycles=" << result.mean_encode_cycles / 1e6
     << " budget_util=" << result.mean_budget_utilization
     << " mean_quality=" << result.mean_quality
     << " kbps=" << result.achieved_bps / 1e3;
  return os.str();
}

}  // namespace qosctrl::pipe

#include "sched/preemptive_edf.h"

#include "util/check.h"

namespace qosctrl::sched {
namespace {

// Charge every job the worst-case scheduling overhead it can inflict:
// one preemption = switch-out + switch-in of the job it displaces.
std::vector<NpTask> inflate(const std::vector<NpTask>& tasks,
                            rt::Cycles context_switch) {
  QC_EXPECT(context_switch >= 0, "context switch cost must be >= 0");
  if (context_switch == 0) return tasks;
  std::vector<NpTask> inflated = tasks;
  for (NpTask& t : inflated) t.cost += 2 * context_switch;
  return inflated;
}

}  // namespace

bool preemptive_edf_schedulable(const std::vector<NpTask>& tasks,
                                rt::Cycles context_switch,
                                EdfScanStats* stats) {
  return edf_demand_schedulable(inflate(tasks, context_switch), 0, stats);
}

bool quantum_edf_schedulable(const std::vector<NpTask>& tasks,
                             rt::Cycles quantum, rt::Cycles context_switch,
                             EdfScanStats* stats) {
  QC_EXPECT(quantum > 0, "quantum must be positive");
  return edf_demand_schedulable(inflate(tasks, context_switch), quantum,
                                stats);
}

}  // namespace qosctrl::sched

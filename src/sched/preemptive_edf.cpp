#include "sched/preemptive_edf.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::sched {

std::vector<NpTask> inflate_context_switch(const std::vector<NpTask>& tasks,
                                           rt::Cycles context_switch) {
  QC_EXPECT(context_switch >= 0, "context switch cost must be >= 0");
  if (context_switch == 0 || tasks.empty()) return tasks;
  rt::Cycles max_deadline = tasks.front().deadline;
  for (const NpTask& t : tasks) {
    max_deadline = std::max(max_deadline, t.deadline);
  }
  std::vector<NpTask> inflated = tasks;
  for (NpTask& t : inflated) {
    // Only a strictly-earlier-relative-deadline job can cause a
    // preemption (switch-out + switch-in of the job it displaces);
    // max-deadline tasks never do, and an all-equal-deadline set
    // never preempts at all.
    if (t.deadline < max_deadline) t.cost += 2 * context_switch;
  }
  return inflated;
}

bool preemptive_edf_schedulable(const std::vector<NpTask>& tasks,
                                rt::Cycles context_switch,
                                EdfScanStats* stats) {
  return edf_demand_schedulable(
      inflate_context_switch(tasks, context_switch), 0, stats);
}

bool quantum_edf_schedulable(const std::vector<NpTask>& tasks,
                             rt::Cycles quantum, rt::Cycles context_switch,
                             EdfScanStats* stats) {
  QC_EXPECT(quantum > 0, "quantum must be positive");
  return edf_demand_schedulable(
      inflate_context_switch(tasks, context_switch), quantum, stats);
}

}  // namespace qosctrl::sched

#include "sched/qpa.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::sched {
namespace {

// h(t): total demand of jobs with absolute deadline <= t after a
// synchronous release (same dbf as the exact scan's inner loop).
rt::Cycles demand_at(const std::vector<NpTask>& tasks, rt::Cycles t) {
  rt::Cycles h = 0;
  for (const NpTask& tk : tasks) {
    if (t >= tk.deadline) {
      h += ((t - tk.deadline) / tk.period + 1) * tk.cost;
    }
  }
  return h;
}

// Largest absolute deadline D_i + k * T_i (k >= 0) at or below x, or
// -1 when x lies below every relative deadline.
rt::Cycles last_deadline_at_or_below(const std::vector<NpTask>& tasks,
                                     rt::Cycles x) {
  rt::Cycles best = -1;
  for (const NpTask& tk : tasks) {
    if (x < tk.deadline) continue;
    best = std::max(
        best, tk.deadline + (x - tk.deadline) / tk.period * tk.period);
  }
  return best;
}

}  // namespace

bool qpa_demand_schedulable(const std::vector<NpTask>& tasks,
                            rt::Cycles max_blocking,
                            const DemandQuery& query) {
  if (query.stats != nullptr) ++query.stats->demand_tests;
  if (query.busy_out != nullptr) *query.busy_out = 0;
  if (tasks.empty()) return true;
  rt::Cycles total_cost = 0;
  rt::Cycles max_deadline = 0;
  for (const NpTask& t : tasks) {
    QC_EXPECT(t.cost >= 0, "np task cost must be >= 0");
    QC_EXPECT(t.period > 0, "np task period must be positive");
    if (t.cost > t.deadline) return false;
    total_cost += t.cost;
    max_deadline = std::max(max_deadline, t.deadline);
  }
  const double util = np_utilization(tasks);
  if (util > 1.0) return false;

  // Busy-period fixpoint, optionally warm-started.  A seed below the
  // true fixpoint converges to the same least fixpoint the cold scan
  // finds (request_bound is monotone), so the DemandQuery contract —
  // seed <= true busy length — keeps the horizon, and therefore the
  // decision, identical to the exact scan's.
  QC_EXPECT(query.busy_seed >= 0, "busy seed must be >= 0");
  rt::Cycles busy = std::max(total_cost, query.busy_seed);
  bool converged = false;
  for (int it = 0; it < kEdfMaxBusyIterations; ++it) {
    if (query.stats != nullptr) ++query.stats->busy_iterations;
    const rt::Cycles next = edf_request_bound(tasks, busy);
    if (next == busy) {
      converged = true;
      break;
    }
    busy = next;
  }
  if (!converged) return false;  // U ~ 1 blow-up: reject conservatively
  if (query.busy_out != nullptr) *query.busy_out = busy;

  rt::Cycles limit = std::max(busy, max_deadline);

  // Zhang–Burns clip extended with the blocking term (file comment):
  // in exact arithmetic every failing t is strictly below the bound;
  // the +1 margin absorbs double rounding so the clip stays safe.
  if (util < 1.0) {
    rt::Cycles max_delta = 0;
    rt::Cycles max_block = 0;
    double weighted = 0.0;  // sum_i (T_i - D_i) * U_i
    for (const NpTask& t : tasks) {
      max_delta = std::max(max_delta, t.deadline - t.period);
      max_block = std::max(max_block, std::min(t.cost, max_blocking));
      weighted += static_cast<double>(t.period - t.deadline) *
                  (static_cast<double>(t.cost) /
                   static_cast<double>(t.period));
    }
    const double la =
        (weighted + static_cast<double>(max_block)) / (1.0 - util);
    const double bound =
        std::max(static_cast<double>(max_delta), la) + 1.0;
    if (bound < static_cast<double>(limit)) {
      limit = std::max<rt::Cycles>(0, static_cast<rt::Cycles>(bound));
    }
  }

  // The blocking term is piecewise constant between the sorted
  // distinct relative deadlines:
  //   suffix[k] = max{ min(C_j, cap) : D_j >= ds[k] }
  // and B(t) = suffix[first index with ds > t] (zero past the last).
  std::vector<rt::Cycles> ds;
  ds.reserve(tasks.size());
  for (const NpTask& t : tasks) ds.push_back(t.deadline);
  std::sort(ds.begin(), ds.end());
  ds.erase(std::unique(ds.begin(), ds.end()), ds.end());
  std::vector<rt::Cycles> suffix(ds.size() + 1, 0);
  if (max_blocking > 0) {
    for (const NpTask& t : tasks) {
      const auto k = static_cast<std::size_t>(
          std::lower_bound(ds.begin(), ds.end(), t.deadline) - ds.begin());
      suffix[k] = std::max(suffix[k], std::min(t.cost, max_blocking));
    }
    for (std::size_t k = ds.size(); k-- > 0;) {
      suffix[k] = std::max(suffix[k], suffix[k + 1]);
    }
  }
  const rt::Cycles min_deadline = ds.front();

  rt::Cycles t = last_deadline_at_or_below(tasks, limit);
  long long iterations = 0;
  while (t >= min_deadline) {
    if (++iterations > kQpaMaxIterations) return false;  // conservative
    if (query.stats != nullptr) ++query.stats->qpa_points;
    const rt::Cycles h = demand_at(tasks, t);
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(ds.begin(), ds.end(), t) - ds.begin());
    const rt::Cycles g = h + suffix[idx];
    const rt::Cycles lo = ds[idx - 1];  // interval floor; idx >= 1 here
    if (g > t) return false;
    if (g < t && g >= lo) {
      // Every deadline p in (g, t] shares this interval's blocking
      // value and has h(p) <= h(t) <= g < p, hence passes; resume the
      // iteration at g itself.
      t = g;
    } else if (g < lo) {
      // All of [lo, t] verified; nothing left to test until below
      // the blocking interval.
      t = last_deadline_at_or_below(tasks, lo - 1);
    } else {
      // g == t: the point passes with equality; step to the next
      // lower deadline (no check points lie strictly between).
      t = last_deadline_at_or_below(tasks, t - 1);
    }
  }
  return true;
}

bool demand_schedulable(const std::vector<NpTask>& tasks,
                        rt::Cycles max_blocking, DemandAlgo algo,
                        const DemandQuery& query) {
  if (algo == DemandAlgo::kExactScan) {
    return edf_demand_schedulable(tasks, max_blocking, query.stats);
  }
  return qpa_demand_schedulable(tasks, max_blocking, query);
}

}  // namespace qosctrl::sched

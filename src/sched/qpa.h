// Quick Processor-demand Analysis (QPA) — the fast path for the
// processor-demand criterion in sched/np_edf.h.
//
// The exact scan enumerates every absolute deadline in the scan
// horizon and tests demand at each.  Zhang & Burns (2009) observed
// that the test can instead iterate DOWNWARD from the top of the
// horizon: at any point t, every deadline p in (h(t), t] satisfies
// h(p) <= h(t) < p, so the whole range is verified in one evaluation
// and the iterate jumps straight to h(t).  The number of evaluations
// is typically a handful regardless of how many deadlines fall in the
// horizon — which is what makes admission a thousands-of-joins/sec
// hot path instead of an O(check points) scan per candidate.
//
// This implementation extends textbook QPA with the blocking term
// B(t) = max{ min(C_j, cap) : D_j > t } that the farm's
// limited-preemption policies need (np: cap = +inf, quantum:
// cap = quantum, preemptive: B = 0).  g(t) = h(t) + B(t) is NOT
// monotone (B is non-increasing), so the naive jump could leap past a
// failure point.  B(t) is, however, piecewise constant with
// breakpoints at the distinct relative deadlines: within one such
// interval the classic QPA jump argument holds verbatim with the
// interval's constant b, and when the iterate falls below the
// interval's lower edge the scan resumes from the largest absolute
// deadline below it.  See docs/admission.md for the full derivation.
//
// The starting point is additionally clipped by the Zhang–Burns
// interval bound extended with the blocking term: any failing t
// satisfies
//
//   t < max( max_i(D_i - T_i),
//            (sum_i (T_i - D_i) * U_i + Bmax) / (1 - U) )     (U < 1)
//
// so deadlines above that bound need never be visited.
//
// Decision-identical to edf_demand_schedulable over the same inputs
// (pinned by tests/sched/qpa_property_test.cpp) except on inputs that
// trip a conservative cap: the exact scan rejects once the horizon
// holds more than kEdfMaxCheckPoints deadlines, QPA rejects after
// kQpaMaxIterations evaluations — both fail safely, but on such
// pathological sets the two may disagree (one rejecting what the
// other proves schedulable).  Realistic farm loads sit far below
// either cap.
#pragma once

#include <vector>

#include "rt/types.h"
#include "sched/np_edf.h"

namespace qosctrl::sched {

/// QPA iteration cap: like the exact scan's check-point cap, the test
/// FAILS CONSERVATIVELY (rejects) if the downward iteration has not
/// finished after this many demand evaluations.  Each evaluation
/// strictly decreases the iterate, so this only triggers on sets with
/// astronomically many distinct deadline points below the bound.
inline constexpr long long kQpaMaxIterations = 1LL << 20;

/// QPA instance of the processor-demand criterion: same semantics,
/// same validation, and the same accept/reject decisions as
/// edf_demand_schedulable(tasks, max_blocking) — see the file comment
/// for the cap caveat.  `query.busy_seed` may warm-start the
/// busy-period fixpoint (see DemandQuery's contract);
/// `query.busy_out` receives the converged busy length.
bool qpa_demand_schedulable(const std::vector<NpTask>& tasks,
                            rt::Cycles max_blocking,
                            const DemandQuery& query = {});

/// Dispatches to the exact scan or QPA.  The exact path ignores the
/// warm-start fields of `query` (baseline behavior preserved).
bool demand_schedulable(const std::vector<NpTask>& tasks,
                        rt::Cycles max_blocking, DemandAlgo algo,
                        const DemandQuery& query = {});

}  // namespace qosctrl::sched

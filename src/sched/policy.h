// Pluggable per-processor scheduling classes for the encoder farm.
//
// A SchedPolicy bundles the two faces of one scheduling discipline:
//
//  * the admission test — one-processor schedulability of a committed
//    sporadic task set under that discipline's run-queue semantics
//    (farm::AdmissionController calls it for every placement
//    candidate);
//  * the run-queue semantics themselves — when a higher-priority
//    (earlier display deadline) arrival may displace the job in
//    service (farm's data plane consults it at every arrival).
//
// The two faces must agree: the admission test is only a guarantee if
// the data plane dispatches the way the test assumed.  Three
// disciplines are provided:
//
//   np         non-preemptive EDF: jobs run to completion; admission
//              pays the full blocking term (the farm's original
//              behavior, and the default).
//   preemptive fully preemptive EDF: every earlier-deadline arrival
//              preempts immediately; no blocking term, so tighter
//              mixes are admitted, at two context switches per
//              preemption.
//   quantum    quantum-sliced EDF: preemption waits for the next
//              multiple of a quantum from the running job's dispatch,
//              capping both preemption frequency and the blocking a
//              tight arrival can suffer.
#pragma once

#include <memory>
#include <vector>

#include "sched/np_edf.h"
#include "sched/preemptive_edf.h"

namespace qosctrl::sched {

enum class PolicyKind {
  kNonPreemptiveEdf,  ///< run to completion ("np")
  kPreemptiveEdf,     ///< preempt on every earlier-deadline arrival
  kQuantumEdf,        ///< preempt only at quantum boundaries
};

/// Short stable name ("np", "preemptive", "quantum") — used by the
/// CLI, the JSON/CSV reports, and the CI bench variants.
const char* policy_name(PolicyKind kind);

/// Inverse of policy_name; false (out untouched) on unknown names.
bool parse_policy_name(const char* name, PolicyKind* out);

/// Short stable name ("exact", "qpa") for the demand algorithm — the
/// CLIs' --admission flag values.
const char* demand_algo_name(DemandAlgo algo);

/// Inverse of demand_algo_name; false (out untouched) on unknown.
bool parse_demand_algo_name(const char* name, DemandAlgo* out);

struct PolicyParams {
  PolicyKind kind = PolicyKind::kNonPreemptiveEdf;
  /// Cycles one context switch costs.  The data plane charges it on
  /// every switch-out and switch-in; the admission test inflates the
  /// committed costs of preemption-capable tasks by 2x it
  /// (sched/preemptive_edf.h).  Ignored by kNonPreemptiveEdf, which
  /// never switches mid-job.
  rt::Cycles context_switch_cost = 0;
  /// kQuantumEdf only: preemption boundary spacing (> 0).
  rt::Cycles quantum = 0;
  /// How schedulable() evaluates the demand criterion.  kQpa is the
  /// production fast path; kExactScan (`--admission exact`) keeps the
  /// original enumeration as the measured baseline.  Decisions are
  /// identical (sched/qpa.h).
  DemandAlgo demand_algo = DemandAlgo::kQpa;
};

/// preemption_point result meaning "this discipline never preempts".
inline constexpr rt::Cycles kNeverPreempts = rt::kNoDeadline;

class SchedPolicy {
 public:
  virtual ~SchedPolicy() = default;

  virtual PolicyKind kind() const = 0;
  const char* name() const { return policy_name(kind()); }

  /// Admission test: the committed task set is schedulable on one
  /// processor under this discipline (context-switch overhead
  /// included).  Sufficient, never optimistic.  The query carries the
  /// stats sink (the control-plane profiling hook behind the
  /// admission_* counters) and the QPA warm-start fields — see
  /// DemandQuery in sched/np_edf.h for the busy_seed contract.
  virtual bool schedulable(const std::vector<NpTask>& tasks,
                           const DemandQuery& query) const = 0;

  /// Convenience overload for callers without warm-start state.
  bool schedulable(const std::vector<NpTask>& tasks,
                   EdfScanStats* stats = nullptr) const {
    return schedulable(tasks, DemandQuery{stats, 0, nullptr});
  }

  /// Run-queue semantics: the earliest instant >= `now` at which the
  /// job whose current service segment started at `dispatched_at` may
  /// be preempted by a higher-priority arrival, or kNeverPreempts.
  virtual rt::Cycles preemption_point(rt::Cycles dispatched_at,
                                      rt::Cycles now) const = 0;

  rt::Cycles context_switch_cost() const {
    return params_.context_switch_cost;
  }
  const PolicyParams& params() const { return params_; }

 protected:
  explicit SchedPolicy(const PolicyParams& params) : params_(params) {}
  PolicyParams params_;
};

/// Builds the policy `params` describes.  Validates: quantum > 0 for
/// kQuantumEdf, context_switch_cost >= 0.
std::unique_ptr<SchedPolicy> make_policy(const PolicyParams& params);

}  // namespace qosctrl::sched

// Preemptive and quantum-sliced EDF schedulability on one processor.
//
// Both are instances of the processor-demand criterion in
// sched/np_edf.h with a smaller blocking term than non-preemptive
// EDF — which is exactly why they admit mixes np-EDF rejects: a long
// later-deadline job no longer stalls a tight-deadline arrival for
// its whole cost.
//
//  * Fully preemptive EDF drops the blocking term entirely; the
//    remaining test (sum_i dbf_i(t) <= t at every deadline point) is
//    exact for sporadic task sets (Baruah, Rosier & Howell 1990).
//  * Quantum-sliced EDF preempts only at multiples of a quantum from
//    the running job's dispatch, capping preemption frequency; the
//    blocking term shrinks to min(C_j, quantum).
//
// Preemption is not free.  Each preemption costs two context
// switches — switching the preempted job out and, later, back in —
// and every preemption is caused by exactly one arriving
// higher-priority job.  The charge is preemption-count aware: a job
// can preempt (or, under quantum slicing, trigger a deferred
// preemption of) a running job only if it arrived after that job's
// release with a strictly earlier absolute deadline, which forces
// D_preemptor < D_preempted <= max_i D_i.  Jobs of the tasks whose
// relative deadline equals the set's maximum therefore never cause a
// preemption, and a set of equal-deadline streams never preempts at
// all — so only tasks with D_i < max_j D_j are inflated by
// 2 * context_switch per job.  (This replaced a flat charge on every
// task; it admits strictly more mixes while still upper-bounding the
// overhead, because every data-plane preemption — see
// preemption_at() in farm/simulator.cpp, which requires a strictly
// earlier deadline — is paid for by its inflated trigger.)  The
// farm's data plane charges the same per-switch cost on its virtual
// processors (platform/cost_model.h calibrates the default).
//
// Both tests inherit the scan caps (kEdfMaxBusyIterations,
// kEdfMaxCheckPoints) and their conservative-fail contract from
// sched/np_edf.h.  With equal context-switch cost the admissible
// sets are nested:
//
//   np-EDF admissible  ⊆  quantum-EDF admissible  ⊆  preemptive-EDF
//   admissible
//
// because the blocking term only shrinks left to right while demand
// and caps stay identical.
#pragma once

#include <vector>

#include "sched/np_edf.h"

namespace qosctrl::sched {

/// The preemption-count-aware overhead charge (file comment): tasks
/// whose relative deadline is strictly below the set's maximum gain
/// 2 * context_switch cycles of cost; the max-deadline tasks — which
/// can never trigger a preemption — ride free.  Identity when
/// context_switch == 0 or fewer than two distinct deadlines exist.
std::vector<NpTask> inflate_context_switch(const std::vector<NpTask>& tasks,
                                           rt::Cycles context_switch);

/// Fully preemptive EDF: processor-demand test without a blocking
/// term.  `context_switch` > 0 applies inflate_context_switch (see
/// the file comment).  Sufficient (exact when
/// context_switch == 0); subject to the np_edf scan caps.
bool preemptive_edf_schedulable(const std::vector<NpTask>& tasks,
                                rt::Cycles context_switch = 0,
                                EdfScanStats* stats = nullptr);

/// Quantum-sliced EDF: preemption only at quantum boundaries, so the
/// blocking term is capped at `quantum` (> 0 required).  Converges to
/// preemptive_edf_schedulable as quantum -> 0 and to
/// np_edf_schedulable as quantum -> max cost.  Sufficient; subject to
/// the np_edf scan caps.
bool quantum_edf_schedulable(const std::vector<NpTask>& tasks,
                             rt::Cycles quantum,
                             rt::Cycles context_switch = 0,
                             EdfScanStats* stats = nullptr);

}  // namespace qosctrl::sched

// Preemptive and quantum-sliced EDF schedulability on one processor.
//
// Both are instances of the processor-demand criterion in
// sched/np_edf.h with a smaller blocking term than non-preemptive
// EDF — which is exactly why they admit mixes np-EDF rejects: a long
// later-deadline job no longer stalls a tight-deadline arrival for
// its whole cost.
//
//  * Fully preemptive EDF drops the blocking term entirely; the
//    remaining test (sum_i dbf_i(t) <= t at every deadline point) is
//    exact for sporadic task sets (Baruah, Rosier & Howell 1990).
//  * Quantum-sliced EDF preempts only at multiples of a quantum from
//    the running job's dispatch, capping preemption frequency; the
//    blocking term shrinks to min(C_j, quantum).
//
// Preemption is not free.  Each preemption costs two context
// switches — switching the preempted job out and, later, back in —
// and every preemption is caused by exactly one arriving
// higher-priority job, so charging every task 2 * context_switch
// extra cycles per job upper-bounds the overhead any job inflicts.
// The admission tests below inflate costs that way; the farm's data
// plane charges the same per-switch cost on its virtual processors
// (platform/cost_model.h calibrates the default).
//
// Both tests inherit the scan caps (kEdfMaxBusyIterations,
// kEdfMaxCheckPoints) and their conservative-fail contract from
// sched/np_edf.h.  With equal context-switch cost the admissible
// sets are nested:
//
//   np-EDF admissible  ⊆  quantum-EDF admissible  ⊆  preemptive-EDF
//   admissible
//
// because the blocking term only shrinks left to right while demand
// and caps stay identical.
#pragma once

#include <vector>

#include "sched/np_edf.h"

namespace qosctrl::sched {

/// Fully preemptive EDF: processor-demand test without a blocking
/// term.  `context_switch` > 0 inflates every task's cost by
/// 2 * context_switch (see the file comment).  Sufficient (exact when
/// context_switch == 0); subject to the np_edf scan caps.
bool preemptive_edf_schedulable(const std::vector<NpTask>& tasks,
                                rt::Cycles context_switch = 0,
                                EdfScanStats* stats = nullptr);

/// Quantum-sliced EDF: preemption only at quantum boundaries, so the
/// blocking term is capped at `quantum` (> 0 required).  Converges to
/// preemptive_edf_schedulable as quantum -> 0 and to
/// np_edf_schedulable as quantum -> max cost.  Sufficient; subject to
/// the np_edf scan caps.
bool quantum_edf_schedulable(const std::vector<NpTask>& tasks,
                             rt::Cycles quantum,
                             rt::Cycles context_switch = 0,
                             EdfScanStats* stats = nullptr);

}  // namespace qosctrl::sched

// EDF scheduling over precedence graphs — the paper's Best_Sched.
//
// The controller's Scheduler component completes a fixed prefix of the
// schedule with an earliest-deadline-first order over the remaining
// actions (non-preemptive, single processor, all releases at cycle 0).
//
// For *static* feasibility analysis we also provide Lawler's modified
// deadlines: d'(a) = min(d(a), min over successors s of d'(s) - C(s)).
// Forward EDF on modified deadlines minimizes maximum lateness for
// 1|prec|Lmax, so `schedulable` is exact, which is what the Problem
// statement in Section 2.1 needs for its precondition (non-empty set of
// feasible schedules w.r.t. Cwc_qmin and Dqmin).
#pragma once

#include "rt/precedence_graph.h"
#include "rt/time_function.h"

namespace qosctrl::sched {

/// EDF schedule of the whole graph: repeatedly runs the ready action
/// with the earliest deadline (ties broken by smallest id, which makes
/// the result deterministic).  Requires an acyclic graph.
rt::ExecutionSequence edf_schedule(const rt::PrecedenceGraph& graph,
                                   const rt::DeadlineFunction& d);

/// The paper's Best_Sched(alpha, theta, i): returns a schedule whose
/// first `i` elements equal alpha[0..i-1] and whose remainder is the
/// EDF order of the not-yet-run actions under deadlines `d`.
/// Requires alpha[0..i-1] to be an execution sequence of the graph.
rt::ExecutionSequence best_sched(const rt::PrecedenceGraph& graph,
                                 const rt::DeadlineFunction& d,
                                 const rt::ExecutionSequence& alpha,
                                 std::size_t i);

/// Lawler's backward deadline modification for 1|prec|Lmax.
/// d'(a) = min(d(a), min_{a->s} (d'(s) - C(s))).
rt::DeadlineFunction modified_deadlines(const rt::PrecedenceGraph& graph,
                                        const rt::TimeFunction& c,
                                        const rt::DeadlineFunction& d);

/// Exact schedulability: true iff some schedule of `graph` is feasible
/// w.r.t. C and D (checked by running EDF on Lawler-modified deadlines,
/// which is optimal for this setting).
bool schedulable(const rt::PrecedenceGraph& graph, const rt::TimeFunction& c,
                 const rt::DeadlineFunction& d);

/// A feasible schedule when one exists (EDF on modified deadlines),
/// otherwise std::nullopt-like empty sequence.  Use `schedulable` to
/// distinguish "empty graph" from "infeasible".
rt::ExecutionSequence optimal_schedule(const rt::PrecedenceGraph& graph,
                                       const rt::TimeFunction& c,
                                       const rt::DeadlineFunction& d);

}  // namespace qosctrl::sched

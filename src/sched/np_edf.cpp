#include "sched/np_edf.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::sched {

rt::Cycles edf_request_bound(const std::vector<NpTask>& tasks,
                             rt::Cycles w) {
  rt::Cycles sum = 0;
  for (const NpTask& t : tasks) {
    const rt::Cycles jobs = (w + t.period - 1) / t.period;  // ceil
    sum += jobs * t.cost;
  }
  return sum;
}

double np_utilization(const std::vector<NpTask>& tasks) {
  double u = 0.0;
  for (const NpTask& t : tasks) {
    QC_EXPECT(t.period > 0, "np task period must be positive");
    u += static_cast<double>(t.cost) / static_cast<double>(t.period);
  }
  return u;
}

bool edf_demand_schedulable(const std::vector<NpTask>& tasks,
                            rt::Cycles max_blocking, EdfScanStats* stats) {
  if (stats != nullptr) ++stats->demand_tests;
  if (tasks.empty()) return true;
  rt::Cycles total_cost = 0;
  for (const NpTask& t : tasks) {
    QC_EXPECT(t.cost >= 0, "np task cost must be >= 0");
    QC_EXPECT(t.period > 0, "np task period must be positive");
    if (t.cost > t.deadline) return false;
    total_cost += t.cost;
  }
  if (np_utilization(tasks) > 1.0) return false;

  // Length of the synchronous busy period: least fixpoint of
  // w = request_bound(w), seeded with sum(C).  The demand criterion
  // only needs check points inside it.
  rt::Cycles busy = total_cost;
  bool converged = false;
  for (int it = 0; it < kEdfMaxBusyIterations; ++it) {
    if (stats != nullptr) ++stats->busy_iterations;
    const rt::Cycles next = edf_request_bound(tasks, busy);
    if (next == busy) {
      converged = true;
      break;
    }
    busy = next;
  }
  if (!converged) return false;  // U ~ 1 blow-up: reject conservatively

  rt::Cycles horizon = busy;
  for (const NpTask& t : tasks) horizon = std::max(horizon, t.deadline);

  // Check points: every absolute deadline D_i + k * T_i within the
  // horizon.
  std::vector<rt::Cycles> points;
  for (const NpTask& t : tasks) {
    for (rt::Cycles p = t.deadline; p <= horizon; p += t.period) {
      points.push_back(p);
      if (points.size() > kEdfMaxCheckPoints) return false;  // conservative
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  if (stats != nullptr) {
    stats->check_points += static_cast<long long>(points.size());
  }
  for (const rt::Cycles p : points) {
    rt::Cycles demand = 0;
    rt::Cycles blocking = 0;
    for (const NpTask& t : tasks) {
      if (p >= t.deadline) {
        demand += ((p - t.deadline) / t.period + 1) * t.cost;
      } else {
        // A job with a later deadline may have just started: it blocks
        // until the run queue's next preemption opportunity — its full
        // cost run-to-completion, at most one quantum when sliced,
        // nothing when fully preemptive.
        blocking = std::max(blocking, std::min(t.cost, max_blocking));
      }
    }
    if (demand + blocking > p) return false;
  }
  return true;
}

bool np_edf_schedulable(const std::vector<NpTask>& tasks,
                        EdfScanStats* stats) {
  return edf_demand_schedulable(tasks, kUncappedBlocking, stats);
}

}  // namespace qosctrl::sched

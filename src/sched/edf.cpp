#include "sched/edf.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "util/check.h"

namespace qosctrl::sched {
namespace {

using rt::ActionId;
using rt::Cycles;

// (deadline, id) min-heap entry for deterministic EDF.
using Entry = std::pair<Cycles, ActionId>;

rt::ExecutionSequence edf_complete(const rt::PrecedenceGraph& graph,
                                   const rt::DeadlineFunction& d,
                                   const rt::ExecutionSequence& prefix) {
  const std::size_t n = graph.num_actions();
  QC_EXPECT(d.size() == n, "deadline function over a different action set");
  std::vector<int> remaining_preds(n, 0);
  std::vector<bool> done(n, false);
  for (std::size_t a = 0; a < n; ++a) {
    remaining_preds[a] =
        static_cast<int>(graph.predecessors(static_cast<ActionId>(a)).size());
  }

  rt::ExecutionSequence out;
  out.reserve(n);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;

  auto complete_action = [&](ActionId a) {
    done[static_cast<std::size_t>(a)] = true;
    out.push_back(a);
    for (ActionId s : graph.successors(a)) {
      if (--remaining_preds[static_cast<std::size_t>(s)] == 0) {
        ready.emplace(d(s), s);
      }
    }
  };

  // Seed with sources, then force the prefix in order.
  for (std::size_t a = 0; a < n; ++a) {
    if (remaining_preds[a] == 0) {
      ready.emplace(d(static_cast<ActionId>(a)), static_cast<ActionId>(a));
    }
  }
  for (ActionId a : prefix) {
    QC_EXPECT(!done[static_cast<std::size_t>(a)],
              "prefix repeats an action");
    QC_EXPECT(remaining_preds[static_cast<std::size_t>(a)] == 0,
              "prefix is not an execution sequence of the graph");
    complete_action(a);
  }

  while (!ready.empty()) {
    const ActionId a = ready.top().second;
    ready.pop();
    if (done[static_cast<std::size_t>(a)]) continue;  // ran in prefix
    complete_action(a);
  }
  QC_ENSURE(out.size() == n, "EDF did not schedule all actions (cycle?)");
  return out;
}

}  // namespace

rt::ExecutionSequence edf_schedule(const rt::PrecedenceGraph& graph,
                                   const rt::DeadlineFunction& d) {
  return edf_complete(graph, d, {});
}

rt::ExecutionSequence best_sched(const rt::PrecedenceGraph& graph,
                                 const rt::DeadlineFunction& d,
                                 const rt::ExecutionSequence& alpha,
                                 std::size_t i) {
  QC_EXPECT(i <= alpha.size(), "prefix length exceeds sequence length");
  rt::ExecutionSequence prefix(alpha.begin(),
                               alpha.begin() + static_cast<std::ptrdiff_t>(i));
  return edf_complete(graph, d, prefix);
}

rt::DeadlineFunction modified_deadlines(const rt::PrecedenceGraph& graph,
                                        const rt::TimeFunction& c,
                                        const rt::DeadlineFunction& d) {
  const std::size_t n = graph.num_actions();
  QC_EXPECT(c.size() == n && d.size() == n,
            "functions over a different action set");
  rt::DeadlineFunction out = d;
  const auto topo = graph.topological_order();
  QC_EXPECT(topo.size() == n, "graph must be acyclic");
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const ActionId a = *it;
    Cycles v = out(a);
    for (ActionId s : graph.successors(a)) {
      v = std::min(v, out(s) - c(s));
    }
    v = std::max<Cycles>(v, 0);  // keep non-negative domain
    out.set(a, std::min(v, rt::kNoDeadline));
  }
  return out;
}

rt::ExecutionSequence optimal_schedule(const rt::PrecedenceGraph& graph,
                                       const rt::TimeFunction& c,
                                       const rt::DeadlineFunction& d) {
  return edf_schedule(graph, modified_deadlines(graph, c, d));
}

bool schedulable(const rt::PrecedenceGraph& graph, const rt::TimeFunction& c,
                 const rt::DeadlineFunction& d) {
  return rt::is_feasible(optimal_schedule(graph, c, d), c, d);
}

}  // namespace qosctrl::sched

#include "sched/policy.h"

#include <cstring>

#include "sched/qpa.h"
#include "util/check.h"

namespace qosctrl::sched {
namespace {

class NonPreemptiveEdfPolicy final : public SchedPolicy {
 public:
  explicit NonPreemptiveEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kNonPreemptiveEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   const DemandQuery& query) const override {
    return demand_schedulable(tasks, kUncappedBlocking,
                              params_.demand_algo, query);
  }
  rt::Cycles preemption_point(rt::Cycles, rt::Cycles) const override {
    return kNeverPreempts;
  }
};

class PreemptiveEdfPolicy final : public SchedPolicy {
 public:
  explicit PreemptiveEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kPreemptiveEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   const DemandQuery& query) const override {
    return demand_schedulable(
        inflate_context_switch(tasks, params_.context_switch_cost), 0,
        params_.demand_algo, query);
  }
  rt::Cycles preemption_point(rt::Cycles, rt::Cycles now) const override {
    return now;
  }
};

class QuantumEdfPolicy final : public SchedPolicy {
 public:
  explicit QuantumEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kQuantumEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   const DemandQuery& query) const override {
    return demand_schedulable(
        inflate_context_switch(tasks, params_.context_switch_cost),
        params_.quantum, params_.demand_algo, query);
  }
  rt::Cycles preemption_point(rt::Cycles dispatched_at,
                              rt::Cycles now) const override {
    // Next multiple of the quantum from dispatch, at or after now.
    const rt::Cycles served = now - dispatched_at;
    const rt::Cycles q = params_.quantum;
    return dispatched_at + (served + q - 1) / q * q;
  }
};

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNonPreemptiveEdf:
      return "np";
    case PolicyKind::kPreemptiveEdf:
      return "preemptive";
    case PolicyKind::kQuantumEdf:
      return "quantum";
  }
  return "?";
}

const char* demand_algo_name(DemandAlgo algo) {
  switch (algo) {
    case DemandAlgo::kExactScan:
      return "exact";
    case DemandAlgo::kQpa:
      return "qpa";
  }
  return "?";
}

bool parse_demand_algo_name(const char* name, DemandAlgo* out) {
  for (const DemandAlgo algo :
       {DemandAlgo::kExactScan, DemandAlgo::kQpa}) {
    if (std::strcmp(name, demand_algo_name(algo)) == 0) {
      *out = algo;
      return true;
    }
  }
  return false;
}

bool parse_policy_name(const char* name, PolicyKind* out) {
  for (const PolicyKind kind :
       {PolicyKind::kNonPreemptiveEdf, PolicyKind::kPreemptiveEdf,
        PolicyKind::kQuantumEdf}) {
    if (std::strcmp(name, policy_name(kind)) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<SchedPolicy> make_policy(const PolicyParams& params) {
  QC_EXPECT(params.context_switch_cost >= 0,
            "context switch cost must be >= 0");
  switch (params.kind) {
    case PolicyKind::kNonPreemptiveEdf:
      return std::make_unique<NonPreemptiveEdfPolicy>(params);
    case PolicyKind::kPreemptiveEdf:
      return std::make_unique<PreemptiveEdfPolicy>(params);
    case PolicyKind::kQuantumEdf:
      QC_EXPECT(params.quantum > 0,
                "quantum-sliced EDF needs a positive quantum");
      return std::make_unique<QuantumEdfPolicy>(params);
  }
  QC_EXPECT(false, "unknown scheduling policy kind");
  return nullptr;
}

}  // namespace qosctrl::sched

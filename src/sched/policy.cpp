#include "sched/policy.h"

#include <cstring>

#include "util/check.h"

namespace qosctrl::sched {
namespace {

class NonPreemptiveEdfPolicy final : public SchedPolicy {
 public:
  explicit NonPreemptiveEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kNonPreemptiveEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   EdfScanStats* stats) const override {
    return np_edf_schedulable(tasks, stats);
  }
  rt::Cycles preemption_point(rt::Cycles, rt::Cycles) const override {
    return kNeverPreempts;
  }
};

class PreemptiveEdfPolicy final : public SchedPolicy {
 public:
  explicit PreemptiveEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kPreemptiveEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   EdfScanStats* stats) const override {
    return preemptive_edf_schedulable(tasks, params_.context_switch_cost,
                                      stats);
  }
  rt::Cycles preemption_point(rt::Cycles, rt::Cycles now) const override {
    return now;
  }
};

class QuantumEdfPolicy final : public SchedPolicy {
 public:
  explicit QuantumEdfPolicy(const PolicyParams& params)
      : SchedPolicy(params) {}
  PolicyKind kind() const override { return PolicyKind::kQuantumEdf; }
  bool schedulable(const std::vector<NpTask>& tasks,
                   EdfScanStats* stats) const override {
    return quantum_edf_schedulable(tasks, params_.quantum,
                                   params_.context_switch_cost, stats);
  }
  rt::Cycles preemption_point(rt::Cycles dispatched_at,
                              rt::Cycles now) const override {
    // Next multiple of the quantum from dispatch, at or after now.
    const rt::Cycles served = now - dispatched_at;
    const rt::Cycles q = params_.quantum;
    return dispatched_at + (served + q - 1) / q * q;
  }
};

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNonPreemptiveEdf:
      return "np";
    case PolicyKind::kPreemptiveEdf:
      return "preemptive";
    case PolicyKind::kQuantumEdf:
      return "quantum";
  }
  return "?";
}

bool parse_policy_name(const char* name, PolicyKind* out) {
  for (const PolicyKind kind :
       {PolicyKind::kNonPreemptiveEdf, PolicyKind::kPreemptiveEdf,
        PolicyKind::kQuantumEdf}) {
    if (std::strcmp(name, policy_name(kind)) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<SchedPolicy> make_policy(const PolicyParams& params) {
  QC_EXPECT(params.context_switch_cost >= 0,
            "context switch cost must be >= 0");
  switch (params.kind) {
    case PolicyKind::kNonPreemptiveEdf:
      return std::make_unique<NonPreemptiveEdfPolicy>(params);
    case PolicyKind::kPreemptiveEdf:
      return std::make_unique<PreemptiveEdfPolicy>(params);
    case PolicyKind::kQuantumEdf:
      QC_EXPECT(params.quantum > 0,
                "quantum-sliced EDF needs a positive quantum");
      return std::make_unique<QuantumEdfPolicy>(params);
  }
  QC_EXPECT(false, "unknown scheduling policy kind");
  return nullptr;
}

}  // namespace qosctrl::sched

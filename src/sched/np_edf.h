// Processor-level schedulability for the encoder farm: sporadic,
// non-preemptive EDF on one processor.
//
// The farm's admission controller reserves each stream a per-frame
// service budget C (the budget its slack tables are paced over), a
// relative display deadline D = K * P, and a minimum inter-arrival
// P.  Frames are dispatched non-preemptively in EDF order of their
// display deadlines, so the committed worst-case load of a processor
// is exactly a sporadic non-preemptive task set — and admission is a
// schedulability test over it.
//
// The test is the classic processor-demand criterion extended with a
// non-preemptive blocking term (George, Rivierre & Spuri 1996):
//
//   for every check point t in the synchronous busy period:
//     max{ C_j : D_j > t }  +  sum_i dbf_i(t)  <=  t
//   dbf_i(t) = (floor((t - D_i) / T_i) + 1) * C_i     for t >= D_i
//
// Sufficient (never admits an unschedulable set); exact up to the
// blocking term.  On pathological inputs (utilization ~ 1 with huge
// hyperperiods) the scan is capped and the test conservatively fails.
#pragma once

#include <vector>

#include "rt/types.h"

namespace qosctrl::sched {

/// One sporadic non-preemptive task (a farm stream's committed load).
struct NpTask {
  rt::Cycles cost = 0;      ///< worst-case execution per job, C
  rt::Cycles deadline = 0;  ///< relative deadline, D
  rt::Cycles period = 0;    ///< minimum inter-arrival, T
};

/// Total utilization sum(C_i / T_i).
double np_utilization(const std::vector<NpTask>& tasks);

/// True when the task set is schedulable by non-preemptive EDF on one
/// processor (sufficient test; see file comment).  The empty set is
/// schedulable.  Requires cost >= 0, period > 0 for every task; a task
/// with cost > deadline is trivially unschedulable.
bool np_edf_schedulable(const std::vector<NpTask>& tasks);

}  // namespace qosctrl::sched

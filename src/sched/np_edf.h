// Processor-level schedulability for the encoder farm: sporadic EDF
// task sets on one processor, with the run-to-completion (blocking)
// term as a parameter.
//
// The farm's admission controller reserves each stream a per-frame
// service budget C (the budget its slack tables are paced over), a
// relative display deadline D = K * P, and a minimum inter-arrival
// P.  Frames are dispatched in EDF order of their display deadlines,
// so the committed worst-case load of a processor is exactly a
// sporadic task set — and admission is a schedulability test over it.
//
// The test is the classic processor-demand criterion extended with a
// blocking term for limited-preemption dispatching (George, Rivierre
// & Spuri 1996):
//
//   for every check point t in the synchronous busy period:
//     B(t)  +  sum_i dbf_i(t)  <=  t
//   dbf_i(t) = (floor((t - D_i) / T_i) + 1) * C_i     for t >= D_i
//
// where the blocking term B(t) depends on how the run queue may defer
// a higher-priority arrival:
//   * non-preemptive EDF:  B(t) = max{ C_j : D_j > t }  (a just-
//     started later-deadline job runs to completion);
//   * quantum-sliced EDF:  B(t) = min(max{ C_j : D_j > t }, quantum)
//     (preemption waits at most one quantum boundary);
//   * fully preemptive EDF: B(t) = 0 (the exact demand test).
// edf_demand_schedulable exposes the blocking cap directly;
// np_edf_schedulable is the uncapped non-preemptive instance the
// farm has always used.  sched/preemptive_edf.h wraps the other two
// and adds context-switch overhead inflation.
//
// Sufficient (never admits an unschedulable set); exact up to the
// blocking term.
#pragma once

#include <vector>

#include "rt/types.h"

namespace qosctrl::sched {

/// One sporadic task (a farm stream's committed load).
struct NpTask {
  rt::Cycles cost = 0;      ///< worst-case execution per job, C
  rt::Cycles deadline = 0;  ///< relative deadline, D
  rt::Cycles period = 0;    ///< minimum inter-arrival, T
};

// ---------------------------------------------------------------------------
// Scan caps — the explicit conservatism contract.
//
// On pathological inputs (utilization ~ 1 with huge hyperperiods) the
// demand scan would be disproportionate to an admission decision, so
// it is capped and the test FAILS CONSERVATIVELY (rejects a possibly
// schedulable set — always safe, never the other way around):
//  * the synchronous busy-period fixpoint iteration gives up after
//    kEdfMaxBusyIterations steps without converging;
//  * the deadline check-point enumeration gives up once more than
//    kEdfMaxCheckPoints points fall inside the scan horizon.
// Both caps apply identically to every test in this family (np,
// quantum, preemptive), so the admissibility orderings between the
// policies hold even on capped inputs.  Tests pin the conservative-
// fail behavior; loosening either cap is an API change.

/// Busy-period fixpoint iteration cap (see above).
inline constexpr int kEdfMaxBusyIterations = 256;

/// Deadline check-point count cap (see above).
inline constexpr std::size_t kEdfMaxCheckPoints = std::size_t{1} << 16;

/// Blocking cap meaning "uncapped" (run to completion): any value at
/// least as large as every task cost behaves identically; the
/// +inf-deadline sentinel is conveniently that.
inline constexpr rt::Cycles kUncappedBlocking = rt::kNoDeadline;

/// Total utilization sum(C_i / T_i).
double np_utilization(const std::vector<NpTask>& tasks);

/// Request-bound function: work demanded by jobs of all tasks
/// released in a window of length w after a synchronous release.
/// Shared by the exact scan's and QPA's busy-period fixpoints.
rt::Cycles edf_request_bound(const std::vector<NpTask>& tasks,
                             rt::Cycles w);

/// Which algorithm evaluates the processor-demand criterion.  Both
/// return identical accept/reject decisions (pinned by
/// tests/sched/qpa_property_test.cpp) up to the conservative scan
/// caps; they differ only in how many points they touch.
enum class DemandAlgo {
  kExactScan,  ///< enumerate every deadline check point (this file)
  kQpa,        ///< Quick Processor-demand Analysis (sched/qpa.h)
};

/// Work accounting for one or more demand scans — how much the
/// control plane actually computed to reach its admission verdicts.
/// Accumulated (never reset) by the tests below when a non-null
/// pointer is passed, so one instance can meter a whole admission
/// session.
struct EdfScanStats {
  long long demand_tests = 0;     ///< demand tests run (either algo)
  long long busy_iterations = 0;  ///< busy-period fixpoint steps
  long long check_points = 0;     ///< exact-scan check points evaluated
  long long qpa_points = 0;       ///< QPA demand evaluations h(t)
};

/// Per-call knobs for a demand test, shared by both algorithms.
///
/// `busy_seed` warm-starts the busy-period fixpoint (QPA only; the
/// exact scan ignores it so the `--admission exact` baseline stays
/// byte-for-byte the original test).  Contract: the seed must be a
/// lower bound on the set's true synchronous busy-period length —
/// any previously computed busy length of a SUBSET of the tasks
/// qualifies (adding tasks or growing costs only lengthens the busy
/// period), 0 always does.  `busy_out`, when non-null, receives the
/// converged busy length (QPA only) so callers can cache it as a
/// future seed.
struct DemandQuery {
  EdfScanStats* stats = nullptr;
  rt::Cycles busy_seed = 0;
  rt::Cycles* busy_out = nullptr;
};

/// Processor-demand criterion with the blocking term capped at
/// `max_blocking` (see the file comment): 0 = fully preemptive EDF,
/// kUncappedBlocking = non-preemptive EDF, a quantum length between.
/// The empty set is schedulable.  Requires cost >= 0, period > 0 for
/// every task; a task with cost > deadline is trivially
/// unschedulable.  Subject to the scan caps above.  `stats`, when
/// non-null, accumulates the scan work done.
bool edf_demand_schedulable(const std::vector<NpTask>& tasks,
                            rt::Cycles max_blocking,
                            EdfScanStats* stats = nullptr);

/// True when the task set is schedulable by non-preemptive EDF on one
/// processor — edf_demand_schedulable with the uncapped blocking
/// term.  Sufficient; subject to the scan caps above.
bool np_edf_schedulable(const std::vector<NpTask>& tasks,
                        EdfScanStats* stats = nullptr);

}  // namespace qosctrl::sched

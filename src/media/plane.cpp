#include "media/plane.h"

#include <algorithm>
#include <cstring>

namespace qosctrl::media {

Plane::Plane(int width, int height, Sample fill)
    : width_(width), height_(height) {
  QC_EXPECT(width > 0 && height > 0, "plane dimensions must be positive");
  QC_EXPECT(width % kTransformSize == 0 && height % kTransformSize == 0,
            "plane dimensions must be multiples of 8");
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               fill);
}

Sample Plane::at_clamped(int x, int y) const {
  return at(std::clamp(x, 0, width_ - 1), std::clamp(y, 0, height_ - 1));
}

Block8 read_plane_block8(const Plane& plane, int x0, int y0) {
  QC_EXPECT(plane.in_bounds(x0, y0) &&
                plane.in_bounds(x0 + kTransformSize - 1,
                                y0 + kTransformSize - 1),
            "plane block out of bounds");
  Block8 out;
  for (int y = 0; y < kTransformSize; ++y) {
    const Sample* src = plane.row(y0 + y) + x0;
    Residual* dst = out.data() + y * kTransformSize;
    for (int x = 0; x < kTransformSize; ++x) {
      dst[x] = static_cast<Residual>(src[x]);
    }
  }
  return out;
}

void write_plane_block8(Plane& plane, int x0, int y0,
                        const std::array<Sample, 64>& pixels) {
  QC_EXPECT(plane.in_bounds(x0, y0) &&
                plane.in_bounds(x0 + kTransformSize - 1,
                                y0 + kTransformSize - 1),
            "plane block out of bounds");
  const Sample* src = pixels.data();
  for (int y = 0; y < kTransformSize; ++y) {
    std::memcpy(plane.row(y0 + y) + x0, src, kTransformSize);
    src += kTransformSize;
  }
}

std::array<Sample, 64> chroma_motion_compensate(const Plane& reference,
                                                int x0, int y0, int luma_dx2,
                                                int luma_dy2) {
  // Chroma displacement is half the luma displacement.  luma_dx2 is in
  // half-pel luma units, so the chroma offset in half-pel *chroma*
  // units is luma_dx2 / 2, rounded toward zero and carrying the
  // half-pel remainder.
  const int cdx2 = luma_dx2 / 2 + (luma_dx2 % 2);  // round away-from-zero half
  const int cdy2 = luma_dy2 / 2 + (luma_dy2 % 2);
  const int ix = (cdx2 >= 0) ? cdx2 / 2 : (cdx2 - 1) / 2;
  const int iy = (cdy2 >= 0) ? cdy2 / 2 : (cdy2 - 1) / 2;
  const int fx = cdx2 - 2 * ix;
  const int fy = cdy2 - 2 * iy;
  std::array<Sample, 64> out;
  for (int y = 0; y < kTransformSize; ++y) {
    for (int x = 0; x < kTransformSize; ++x) {
      const int bx = x0 + x + ix;
      const int by = y0 + y + iy;
      const int a = reference.at_clamped(bx, by);
      int v;
      if (fx == 0 && fy == 0) {
        v = a;
      } else if (fx == 1 && fy == 0) {
        v = (a + reference.at_clamped(bx + 1, by) + 1) / 2;
      } else if (fx == 0) {
        v = (a + reference.at_clamped(bx, by + 1) + 1) / 2;
      } else {
        v = (a + reference.at_clamped(bx + 1, by) +
             reference.at_clamped(bx, by + 1) +
             reference.at_clamped(bx + 1, by + 1) + 2) / 4;
      }
      out[static_cast<std::size_t>(y * kTransformSize + x)] =
          static_cast<Sample>(v);
    }
  }
  return out;
}

std::array<Sample, 64> chroma_dc_prediction(const Plane& recon, int x0,
                                            int y0) {
  int sum = 0;
  int count = 0;
  for (int x = 0; x < kTransformSize; ++x) {
    if (recon.in_bounds(x0 + x, y0 - 1)) {
      sum += recon.at(x0 + x, y0 - 1);
      ++count;
    }
  }
  for (int y = 0; y < kTransformSize; ++y) {
    if (recon.in_bounds(x0 - 1, y0 + y)) {
      sum += recon.at(x0 - 1, y0 + y);
      ++count;
    }
  }
  const Sample dc =
      count > 0 ? static_cast<Sample>((sum + count / 2) / count) : 128;
  std::array<Sample, 64> out;
  out.fill(dc);
  return out;
}

double plane_sse(const Plane& a, const Plane& b) {
  QC_EXPECT(a.width() == b.width() && a.height() == b.height(),
            "planes must have equal dimensions");
  double acc = 0.0;
  const auto& da = a.data();
  const auto& db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace qosctrl::media

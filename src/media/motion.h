// Block motion estimation — the encoder's quality-parameterized action.
//
// Full-pel spiral search over a square window whose radius grows with
// the quality level, with optional early termination when a match is
// already good enough.  The returned `points_examined` is the content-
// coupled work measure the virtual platform charges cycles for: static
// scenes terminate after a few points (cheap), scene cuts and fast
// motion exhaust the window (expensive), exactly the load profile the
// paper's controller reacts to.
#pragma once

#include <vector>

#include "media/frame.h"
#include "media/padded_frame.h"
#include "rt/types.h"

namespace qosctrl::media {

/// Result of estimating motion for one macroblock.  Vectors are kept
/// both as the best full-pel offset (dx, dy) and in half-pel units
/// (dx2, dy2): without refinement dx2 == 2*dx; with half-pel
/// refinement enabled dx2 may carry an odd (fractional) component.
struct MotionResult {
  int dx = 0;                ///< best motion vector, full pel
  int dy = 0;
  int dx2 = 0;               ///< best vector in half-pel units
  int dy2 = 0;
  std::int64_t sad = 0;      ///< SAD at the best vector
  int points_examined = 0;   ///< search points actually evaluated
  int points_total = 0;      ///< window size (all candidate points)
};

/// Search configuration.
struct MotionConfig {
  int radius = 8;  ///< window is [-radius, +radius]^2 (Chebyshev)
  /// Early-termination threshold on SAD (per 256-pixel macroblock);
  /// <= 0 disables early exit.
  std::int64_t early_exit_sad = 512;
  /// Refine the full-pel winner over its 8 half-pel neighbors
  /// (bilinear interpolation).  Adds at most 8 SAD evaluations.
  bool half_pel = false;
};

/// Search window radius for quality level index `qi` (0..7), matching
/// the paper's monotone ME cost table: level 0 means "no search"
/// (zero-vector only), level 7 the widest window.
int search_radius_for_level(std::size_t qi);

/// Fused early-exit SAD between a cached 16x16 block `cur` (contiguous,
/// stride 16) and the 16x16 block at `ref` with row stride
/// `ref_stride`.  Returns the exact SAD when it is < `best`; aborts
/// with a partial sum >= `best` (checked every 4 rows) as soon as the
/// block cannot win.  Dispatches to the active SIMD backend
/// (media/simd/kernels.h); all backends return identical values.
std::int64_t sad_16x16(const Sample* cur, const Sample* ref,
                       std::ptrdiff_t ref_stride, std::int64_t best);

/// Estimates motion of the macroblock at (x0, y0) of `current` against
/// `reference`.  Candidates are visited in spiral (increasing Chebyshev
/// ring) order starting at the zero vector.  The current macroblock is
/// read once per call; each candidate runs the fused early-exit SAD
/// kernel, falling back to the border-clamped scalar path only for
/// candidate blocks that overlap the frame edge.
MotionResult estimate_motion(const Frame& current, const Frame& reference,
                             int x0, int y0, const MotionConfig& config);

/// Fast variant against a pre-padded reference: every candidate —
/// border macroblocks included — runs the span kernel with no clamping
/// branches, and ring candidates are batched 4 per SIMD kernel call.
/// Bit-exact with the Frame overload as long as the search window
/// (radius + 1 for half-pel) fits in reference.pad().  This is the
/// path the encoder uses, amortizing the pad over a whole frame.
MotionResult estimate_motion(const Frame& current,
                             const PaddedFrame& reference, int x0, int y0,
                             const MotionConfig& config);

/// Motion-compensated 16x16 prediction from `reference` at
/// (x0 + dx, y0 + dy), border-clamped.
std::array<Sample, 256> motion_compensate(const Frame& reference, int x0,
                                          int y0, int dx, int dy);

/// Half-pel motion compensation: (dx2, dy2) in half-pel units.
/// Fractional positions use bilinear interpolation with standard
/// rounding ((a+b+1)/2 axis-aligned, (a+b+c+d+2)/4 diagonal).  The
/// even-vector case reduces exactly to motion_compensate.
std::array<Sample, 256> motion_compensate_halfpel(const Frame& reference,
                                                  int x0, int y0, int dx2,
                                                  int dy2);

/// Padded variants: contiguous row reads, no per-pixel clamping.
/// Bit-exact with the Frame overloads for displacements within the pad.
std::array<Sample, 256> motion_compensate(const PaddedFrame& reference,
                                          int x0, int y0, int dx, int dy);
std::array<Sample, 256> motion_compensate_halfpel(const PaddedFrame& reference,
                                                  int x0, int y0, int dx2,
                                                  int dy2);

}  // namespace qosctrl::media

#include "media/quant.h"

#include <cstdlib>

namespace qosctrl::media {

std::int32_t quantize_coeff(std::int32_t c, int qp) {
  QC_EXPECT(qp >= kMinQp && qp <= kMaxQp, "QP out of range");
  const int step = 2 * qp;
  const std::int32_t mag = (std::abs(c) + step / 2) / step;
  return c < 0 ? -mag : mag;
}

std::int32_t dequantize_coeff(std::int32_t level, int qp) {
  QC_EXPECT(qp >= kMinQp && qp <= kMaxQp, "QP out of range");
  return level * 2 * qp;
}

Coeffs8 quantize_block(const Coeffs8& coeffs, int qp) {
  Coeffs8 out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = quantize_coeff(coeffs[i], qp);
  }
  return out;
}

Coeffs8 dequantize_block(const Coeffs8& levels, int qp) {
  Coeffs8 out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = dequantize_coeff(levels[i], qp);
  }
  return out;
}

int count_nonzero(const Coeffs8& levels) {
  int n = 0;
  for (std::int32_t v : levels) n += (v != 0) ? 1 : 0;
  return n;
}

}  // namespace qosctrl::media

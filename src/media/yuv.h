// 4:2:0 YCbCr frames: a full-resolution luma Frame plus two
// half-resolution chroma Planes.
//
// The paper's PSNR series is a single per-frame number, reported here
// (as is conventional) on luma; chroma is carried end to end through
// motion compensation, transform coding, and the bitstream so the
// encoder is a complete codec rather than a luma-only toy.
#pragma once

#include "media/frame.h"
#include "media/plane.h"

namespace qosctrl::media {

struct YuvFrame {
  Frame y;
  Plane cb;
  Plane cr;

  YuvFrame() = default;
  YuvFrame(int width, int height, Sample luma_fill = 128,
           Sample chroma_fill = 128)
      : y(width, height, luma_fill),
        cb(width / 2, height / 2, chroma_fill),
        cr(width / 2, height / 2, chroma_fill) {}

  int width() const { return y.width(); }
  int height() const { return y.height(); }
  bool empty() const { return y.empty(); }
};

/// Luma PSNR (the paper's metric).
inline double psnr_y(const YuvFrame& a, const YuvFrame& b,
                     double cap = 99.0) {
  return psnr(a.y, b.y, cap);
}

/// Combined chroma PSNR over both planes (diagnostic).
double psnr_chroma(const YuvFrame& a, const YuvFrame& b, double cap = 99.0);

}  // namespace qosctrl::media

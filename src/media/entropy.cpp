#include "media/entropy.h"

#include <algorithm>

#include "util/check.h"

namespace qosctrl::media {

const std::array<int, 64>& zigzag_order() {
  static const std::array<int, 64> order = [] {
    std::array<int, 64> o{};
    int idx = 0;
    for (int s = 0; s < 15; ++s) {  // anti-diagonals
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y) {
          o[static_cast<std::size_t>(idx++)] = y * 8 + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x) {
          o[static_cast<std::size_t>(idx++)] = (s - x) * 8 + x;
        }
      }
    }
    return o;
  }();
  return order;
}

void put_ue(util::BitWriter& bw, std::uint32_t v) {
  // Code number v -> (v+1) written with leading zeros.
  const std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
  int bits = 0;
  while ((code >> bits) != 0) ++bits;
  bw.put_bits(0, bits - 1);
  bw.put_bits(code, bits);
}

std::uint32_t get_ue(util::BitReader& br) {
  int zeros = 0;
  while (!br.get_bit()) {
    ++zeros;
    if (zeros > 32 || br.overrun()) return 0;  // malformed stream
  }
  std::uint64_t code = 1;
  code = (code << zeros) | br.get_bits(zeros);
  return static_cast<std::uint32_t>(code - 1);
}

void put_se(util::BitWriter& bw, std::int32_t v) {
  // 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  const std::uint32_t mapped =
      v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
            : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  put_ue(bw, mapped);
}

std::int32_t get_se(util::BitReader& br) {
  const std::uint32_t u = get_ue(br);
  if (u == 0) return 0;
  const std::int64_t mag = (static_cast<std::int64_t>(u) + 1) / 2;
  return (u % 2 == 1) ? static_cast<std::int32_t>(mag)
                      : static_cast<std::int32_t>(-mag);
}

std::int64_t encode_block(util::BitWriter& bw, const Coeffs8& levels) {
  const std::int64_t before = bw.bit_count();
  const auto& zz = zigzag_order();
  int run = 0;
  for (int i = 0; i < 64; ++i) {
    const std::int32_t v = levels[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])];
    if (v == 0) {
      ++run;
      continue;
    }
    bw.put_bit(true);  // "coefficient follows" flag
    put_ue(bw, static_cast<std::uint32_t>(run));
    put_se(bw, v);
    run = 0;
  }
  bw.put_bit(false);  // end of block
  return bw.bit_count() - before;
}

std::optional<Coeffs8> decode_block(util::BitReader& br) {
  Coeffs8 out{};
  const auto& zz = zigzag_order();
  int pos = 0;
  while (br.get_bit()) {
    const int run = static_cast<int>(get_ue(br));
    const std::int32_t level = get_se(br);
    if (run < 0 || pos + run >= 64 || br.overrun()) {
      return std::nullopt;  // corrupt stream: run past end of block
    }
    pos += run;
    out[static_cast<std::size_t>(zz[static_cast<std::size_t>(pos)])] = level;
    ++pos;
  }
  if (br.overrun()) return std::nullopt;
  return out;
}

}  // namespace qosctrl::media

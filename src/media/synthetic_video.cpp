#include "media/synthetic_video.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qosctrl::media {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Cheap deterministic per-pixel noise hash in [-1, 1].
double noise_hash(int x, int y, int t, std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)) * 0x165667b19e3779f9ULL;
  h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return (static_cast<double>(h & 0xffffff) / double(0xffffff)) * 2.0 - 1.0;
}

}  // namespace

SyntheticVideo::SyntheticVideo(const VideoConfig& config) : config_(config) {
  QC_EXPECT(config.width > 0 && config.height > 0,
            "video dimensions must be positive");
  QC_EXPECT(config.num_frames >= 1, "at least one frame required");
  QC_EXPECT(config.num_scenes >= 1 &&
                config.num_scenes <= config.num_frames,
            "scene count must be in [1, num_frames]");

  util::Rng rng(config.seed);
  const double w = config.width;
  const double h = config.height;
  for (int s = 0; s < config.num_scenes; ++s) {
    Scene scene;
    scene.base_level = rng.uniform(80.0, 170.0);
    scene.fx1 = rng.uniform(0.01, 0.08);
    scene.fy1 = rng.uniform(0.01, 0.08);
    scene.ph1 = rng.uniform(0.0, 2.0 * kPi);
    scene.fx2 = rng.uniform(0.08, 0.35);
    scene.fy2 = rng.uniform(0.08, 0.35);
    scene.ph2 = rng.uniform(0.0, 2.0 * kPi);
    scene.amp1 = rng.uniform(15.0, 40.0);
    scene.amp2 = rng.uniform(10.0, 25.0);
    // Scenes come in three activity classes so per-scene load levels
    // differ visibly, as in the paper's figures.  Pans are integer-
    // valued so full-pel motion search *can* lock on exactly — provided
    // the window is wide enough.  Two scenes (the paper's two skip-
    // burst regions) pan at Chebyshev radius 5: beyond constant q=3
    // (radius 3) and q=4 (radius 4), trackable only at q >= 5.
    const bool busy = (s == 2 || s == 6) || (s >= 9 && s % 3 == 1);
    const bool medium = !busy && (s % 2 == 1);
    const int pan_mag = busy ? 5 : (medium ? 2 : 1);
    scene.pan_vx = static_cast<double>(rng.uniform_i64(-pan_mag, pan_mag));
    scene.pan_vy = static_cast<double>(rng.uniform_i64(-pan_mag, pan_mag));
    if (busy) {
      // Force the dominant component to the full magnitude.
      scene.pan_vx = (scene.pan_vx >= 0) ? pan_mag : -pan_mag;
    }
    const int n_objects = static_cast<int>(rng.uniform_i64(3, 6));
    for (int o = 0; o < n_objects; ++o) {
      MovingObject obj;
      obj.cx = rng.uniform(0.0, w);
      obj.cy = rng.uniform(0.0, h);
      const double speed = busy ? 5.0 : (medium ? 3.5 : 2.5);
      obj.vx = rng.uniform(-speed, speed);
      obj.vy = rng.uniform(-speed, speed);
      obj.radius = rng.uniform(8.0, 24.0);
      obj.brightness = rng.uniform(-60.0, 60.0);
      obj.phase = rng.uniform(0.0, 2.0 * kPi);
      obj.tint_cb = rng.uniform(-30.0, 30.0);
      obj.tint_cr = rng.uniform(-30.0, 30.0);
      scene.objects.push_back(obj);
    }
    scene.cb_base = rng.uniform(110.0, 146.0);
    scene.cr_base = rng.uniform(110.0, 146.0);
    scene.chroma_freq = rng.uniform(0.005, 0.03);
    scene.chroma_amp = rng.uniform(8.0, 20.0);
    scene.chroma_phase = rng.uniform(0.0, 2.0 * kPi);
    scenes_.push_back(std::move(scene));
  }

  // Evenly sized scenes (remainder spread over the first ones).
  starts_.resize(static_cast<std::size_t>(config.num_scenes));
  const int base = config.num_frames / config.num_scenes;
  const int extra = config.num_frames % config.num_scenes;
  int at = 0;
  for (int s = 0; s < config.num_scenes; ++s) {
    starts_[static_cast<std::size_t>(s)] = at;
    at += base + (s < extra ? 1 : 0);
  }
}

int SyntheticVideo::scene_of(int index) const {
  QC_EXPECT(index >= 0 && index < config_.num_frames,
            "frame index out of range");
  int s = config_.num_scenes - 1;
  while (s > 0 && starts_[static_cast<std::size_t>(s)] > index) --s;
  return s;
}

bool SyntheticVideo::is_scene_cut(int index) const {
  QC_EXPECT(index >= 0 && index < config_.num_frames,
            "frame index out of range");
  for (int s : starts_) {
    if (s == index) return true;
  }
  return false;
}

std::vector<int> SyntheticVideo::scene_starts() const { return starts_; }

Frame SyntheticVideo::frame(int index) const {
  const int s = scene_of(index);
  const Scene& scene = scenes_[static_cast<std::size_t>(s)];
  const int local_t = index - starts_[static_cast<std::size_t>(s)];

  Frame out(config_.width, config_.height);
  const double ox = scene.pan_vx * local_t;
  const double oy = scene.pan_vy * local_t;
  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      const double wx = x + ox;
      const double wy = y + oy;
      double v = scene.base_level;
      v += scene.amp1 *
           std::sin(scene.fx1 * wx * 2.0 * kPi + scene.ph1) *
           std::cos(scene.fy1 * wy * 2.0 * kPi);
      v += scene.amp2 *
           std::sin(scene.fx2 * wx * 2.0 * kPi +
                    scene.fy2 * wy * 2.0 * kPi + scene.ph2);
      // Moving objects: smooth discs with soft edges and a little
      // internal texture.
      for (const auto& obj : scene.objects) {
        const double cx = obj.cx + obj.vx * local_t;
        const double cy = obj.cy + obj.vy * local_t;
        const double dx = x - cx;
        const double dy = y - cy;
        const double d2 = dx * dx + dy * dy;
        const double r2 = obj.radius * obj.radius;
        if (d2 < r2) {
          const double falloff = 1.0 - d2 / r2;
          const double texture =
              0.3 * std::sin(0.5 * dx + obj.phase) * std::cos(0.5 * dy);
          v += obj.brightness * falloff * (1.0 + texture);
        }
      }
      v += config_.noise_amplitude * noise_hash(x, y, index, config_.seed);
      out.set(x, y, static_cast<Sample>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return out;
}

YuvFrame SyntheticVideo::frame_yuv(int index) const {
  const int s = scene_of(index);
  const Scene& scene = scenes_[static_cast<std::size_t>(s)];
  const int local_t = index - starts_[static_cast<std::size_t>(s)];

  YuvFrame out;
  out.y = frame(index);
  out.cb = Plane(config_.width / 2, config_.height / 2);
  out.cr = Plane(config_.width / 2, config_.height / 2);

  const double ox = scene.pan_vx * local_t;
  const double oy = scene.pan_vy * local_t;
  for (int cy = 0; cy < out.cb.height(); ++cy) {
    for (int cx = 0; cx < out.cb.width(); ++cx) {
      // Chroma sample sits at luma position (2cx, 2cy); the color
      // fields live in world coordinates so they pan with the luma.
      const double wx = 2 * cx + ox;
      const double wy = 2 * cy + oy;
      double cb = scene.cb_base +
                  scene.chroma_amp *
                      std::sin(scene.chroma_freq * wx * 2.0 * kPi +
                               scene.chroma_phase);
      double cr = scene.cr_base +
                  scene.chroma_amp *
                      std::cos(scene.chroma_freq * wy * 2.0 * kPi +
                               scene.chroma_phase);
      for (const auto& obj : scene.objects) {
        const double ocx = obj.cx + obj.vx * local_t;
        const double ocy = obj.cy + obj.vy * local_t;
        const double dx = 2 * cx - ocx;
        const double dy = 2 * cy - ocy;
        const double d2 = dx * dx + dy * dy;
        const double r2 = obj.radius * obj.radius;
        if (d2 < r2) {
          const double falloff = 1.0 - d2 / r2;
          cb += obj.tint_cb * falloff;
          cr += obj.tint_cr * falloff;
        }
      }
      out.cb.set(cx, cy, static_cast<Sample>(std::clamp(cb, 0.0, 255.0)));
      out.cr.set(cx, cy, static_cast<Sample>(std::clamp(cr, 0.0, 255.0)));
    }
  }
  return out;
}

}  // namespace qosctrl::media

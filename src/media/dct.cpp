#include "media/dct.h"

#include <cmath>

#include "media/simd/kernels.h"

namespace qosctrl::media {
namespace {

constexpr int kN = kTransformSize;

// ---------------------------------------------------------------------------
// Double-precision reference basis.

/// basis[u][x] = c(u) * cos((2x+1) u pi / 16), c(0)=sqrt(1/8), else sqrt(2/8).
struct Basis {
  double m[kN][kN];
  Basis() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < kN; ++u) {
      const double c = (u == 0) ? std::sqrt(1.0 / kN) : std::sqrt(2.0 / kN);
      for (int x = 0; x < kN; ++x) {
        m[u][x] = c * std::cos((2 * x + 1) * u * pi / (2.0 * kN));
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

}  // namespace

Coeffs8 forward_dct8(const Block8& block) {
  Coeffs8 out;
  simd::active_kernels().fdct8(block.data(), out.data());
  return out;
}

Block8 inverse_dct8(const Coeffs8& coeffs) {
  Block8 out;
  simd::active_kernels().idct8(coeffs.data(), out.data());
  return out;
}

Coeffs8 forward_dct8_ref(const Block8& block) {
  const auto& B = basis().m;
  double tmp[kN][kN];
  // Rows.
  for (int y = 0; y < kN; ++y) {
    for (int u = 0; u < kN; ++u) {
      double acc = 0.0;
      for (int x = 0; x < kN; ++x) {
        acc += B[u][x] * static_cast<double>(block[static_cast<std::size_t>(y * kN + x)]);
      }
      tmp[y][u] = acc;
    }
  }
  // Columns.
  Coeffs8 out;
  for (int v = 0; v < kN; ++v) {
    for (int u = 0; u < kN; ++u) {
      double acc = 0.0;
      for (int y = 0; y < kN; ++y) acc += B[v][y] * tmp[y][u];
      out[static_cast<std::size_t>(v * kN + u)] =
          static_cast<std::int32_t>(std::llround(acc));
    }
  }
  return out;
}

Block8 inverse_dct8_ref(const Coeffs8& coeffs) {
  const auto& B = basis().m;
  double tmp[kN][kN];
  // Columns (inverse).
  for (int u = 0; u < kN; ++u) {
    for (int y = 0; y < kN; ++y) {
      double acc = 0.0;
      for (int v = 0; v < kN; ++v) {
        acc += B[v][y] * static_cast<double>(coeffs[static_cast<std::size_t>(v * kN + u)]);
      }
      tmp[y][u] = acc;
    }
  }
  // Rows (inverse).
  Block8 out;
  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) {
      double acc = 0.0;
      for (int u = 0; u < kN; ++u) acc += B[u][x] * tmp[y][u];
      const long long v = std::llround(acc);
      out[static_cast<std::size_t>(y * kN + x)] = static_cast<Residual>(
          std::max<long long>(-32768, std::min<long long>(32767, v)));
    }
  }
  return out;
}

}  // namespace qosctrl::media

#include "media/dct.h"

#include <cmath>

namespace qosctrl::media {
namespace {

constexpr int kN = kTransformSize;

// ---------------------------------------------------------------------------
// Fixed-point integer kernel (LLM butterflies, libjpeg "islow" network).
//
// Each 1-D pass computes the sqrt(8)-scaled 8-point DCT (or its
// inverse) with constants in kConstBits fixed point; the final descale
// folds both passes' scale factors plus the 2^3 = (sqrt 8)^2 down to
// the orthonormal range in a single rounded shift.  All intermediates
// are int64, so there is no overflow for any int32 coefficient input,
// and kPass1Bits = 9 keeps the inter-pass rounding error far below one
// output unit.

constexpr int kConstBits = 15;
constexpr int kPass1Bits = 9;

constexpr std::int64_t fix(double x) {
  return static_cast<std::int64_t>(x * (INT64_C(1) << kConstBits) + 0.5);
}

constexpr std::int64_t kFix_0_298631336 = fix(0.298631336);
constexpr std::int64_t kFix_0_390180644 = fix(0.390180644);
constexpr std::int64_t kFix_0_541196100 = fix(0.541196100);
constexpr std::int64_t kFix_0_765366865 = fix(0.765366865);
constexpr std::int64_t kFix_0_899976223 = fix(0.899976223);
constexpr std::int64_t kFix_1_175875602 = fix(1.175875602);
constexpr std::int64_t kFix_1_501321110 = fix(1.501321110);
constexpr std::int64_t kFix_1_847759065 = fix(1.847759065);
constexpr std::int64_t kFix_1_961570560 = fix(1.961570560);
constexpr std::int64_t kFix_2_053119869 = fix(2.053119869);
constexpr std::int64_t kFix_2_562915447 = fix(2.562915447);
constexpr std::int64_t kFix_3_072711026 = fix(3.072711026);

inline std::int64_t descale(std::int64_t x, int n) {
  return (x + (INT64_C(1) << (n - 1))) >> n;
}

/// One forward 8-point pass over `in` (stride 1) writing to `out`
/// (stride 1).  `shift_simple` / `shift_const` are the descale amounts
/// for the add-only (0, 4) and constant-multiplied outputs; pass 1
/// *up*-scales the add-only outputs by kPass1Bits instead (negative
/// shift), matching the libjpeg bookkeeping.
template <bool kFirstPass>
inline void fdct_pass(const std::int64_t* in, std::int64_t* out) {
  const std::int64_t tmp0 = in[0] + in[7];
  const std::int64_t tmp7 = in[0] - in[7];
  const std::int64_t tmp1 = in[1] + in[6];
  const std::int64_t tmp6 = in[1] - in[6];
  const std::int64_t tmp2 = in[2] + in[5];
  const std::int64_t tmp5 = in[2] - in[5];
  const std::int64_t tmp3 = in[3] + in[4];
  const std::int64_t tmp4 = in[3] - in[4];

  // Even part.
  const std::int64_t tmp10 = tmp0 + tmp3;
  const std::int64_t tmp13 = tmp0 - tmp3;
  const std::int64_t tmp11 = tmp1 + tmp2;
  const std::int64_t tmp12 = tmp1 - tmp2;

  const int simple_down = kFirstPass ? 0 : kPass1Bits + 3;
  const int const_down =
      kFirstPass ? kConstBits - kPass1Bits : kConstBits + kPass1Bits + 3;

  if (kFirstPass) {
    out[0] = (tmp10 + tmp11) << kPass1Bits;
    out[4] = (tmp10 - tmp11) << kPass1Bits;
  } else {
    out[0] = descale(tmp10 + tmp11, simple_down);
    out[4] = descale(tmp10 - tmp11, simple_down);
  }

  const std::int64_t z1 = (tmp12 + tmp13) * kFix_0_541196100;
  out[2] = descale(z1 + tmp13 * kFix_0_765366865, const_down);
  out[6] = descale(z1 - tmp12 * kFix_1_847759065, const_down);

  // Odd part.
  std::int64_t z1o = tmp4 + tmp7;
  std::int64_t z2 = tmp5 + tmp6;
  std::int64_t z3 = tmp4 + tmp6;
  std::int64_t z4 = tmp5 + tmp7;
  const std::int64_t z5 = (z3 + z4) * kFix_1_175875602;

  const std::int64_t t4 = tmp4 * kFix_0_298631336;
  const std::int64_t t5 = tmp5 * kFix_2_053119869;
  const std::int64_t t6 = tmp6 * kFix_3_072711026;
  const std::int64_t t7 = tmp7 * kFix_1_501321110;
  z1o = -z1o * kFix_0_899976223;
  z2 = -z2 * kFix_2_562915447;
  z3 = -z3 * kFix_1_961570560 + z5;
  z4 = -z4 * kFix_0_390180644 + z5;

  out[7] = descale(t4 + z1o + z3, const_down);
  out[5] = descale(t5 + z2 + z4, const_down);
  out[3] = descale(t6 + z2 + z3, const_down);
  out[1] = descale(t7 + z1o + z4, const_down);
}

/// One inverse 8-point pass; pass 1 descales by kConstBits - kPass1Bits,
/// pass 2 by kConstBits + kPass1Bits + 3.
template <bool kFirstPass>
inline void idct_pass(const std::int64_t* in, std::int64_t* out) {
  // Even part.
  std::int64_t z2 = in[2];
  std::int64_t z3 = in[6];
  const std::int64_t z1 = (z2 + z3) * kFix_0_541196100;
  const std::int64_t tmp2 = z1 - z3 * kFix_1_847759065;
  const std::int64_t tmp3 = z1 + z2 * kFix_0_765366865;

  z2 = in[0];
  z3 = in[4];
  const std::int64_t tmp0 = (z2 + z3) << kConstBits;
  const std::int64_t tmp1 = (z2 - z3) << kConstBits;

  const std::int64_t tmp10 = tmp0 + tmp3;
  const std::int64_t tmp13 = tmp0 - tmp3;
  const std::int64_t tmp11 = tmp1 + tmp2;
  const std::int64_t tmp12 = tmp1 - tmp2;

  // Odd part.
  std::int64_t t0 = in[7];
  std::int64_t t1 = in[5];
  std::int64_t t2 = in[3];
  std::int64_t t3 = in[1];
  std::int64_t z1o = t0 + t3;
  std::int64_t z2o = t1 + t2;
  std::int64_t z3o = t0 + t2;
  std::int64_t z4o = t1 + t3;
  const std::int64_t z5 = (z3o + z4o) * kFix_1_175875602;

  t0 *= kFix_0_298631336;
  t1 *= kFix_2_053119869;
  t2 *= kFix_3_072711026;
  t3 *= kFix_1_501321110;
  z1o = -z1o * kFix_0_899976223;
  z2o = -z2o * kFix_2_562915447;
  z3o = -z3o * kFix_1_961570560 + z5;
  z4o = -z4o * kFix_0_390180644 + z5;

  t0 += z1o + z3o;
  t1 += z2o + z4o;
  t2 += z2o + z3o;
  t3 += z1o + z4o;

  const int down =
      kFirstPass ? kConstBits - kPass1Bits : kConstBits + kPass1Bits + 3;
  out[0] = descale(tmp10 + t3, down);
  out[7] = descale(tmp10 - t3, down);
  out[1] = descale(tmp11 + t2, down);
  out[6] = descale(tmp11 - t2, down);
  out[2] = descale(tmp12 + t1, down);
  out[5] = descale(tmp12 - t1, down);
  out[3] = descale(tmp13 + t0, down);
  out[4] = descale(tmp13 - t0, down);
}

// ---------------------------------------------------------------------------
// Double-precision reference basis.

/// basis[u][x] = c(u) * cos((2x+1) u pi / 16), c(0)=sqrt(1/8), else sqrt(2/8).
struct Basis {
  double m[kN][kN];
  Basis() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < kN; ++u) {
      const double c = (u == 0) ? std::sqrt(1.0 / kN) : std::sqrt(2.0 / kN);
      for (int x = 0; x < kN; ++x) {
        m[u][x] = c * std::cos((2 * x + 1) * u * pi / (2.0 * kN));
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

}  // namespace

Coeffs8 forward_dct8(const Block8& block) {
  std::int64_t row_in[kN];
  std::int64_t ws[kN * kN];
  // Rows.
  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) {
      row_in[x] = block[static_cast<std::size_t>(y * kN + x)];
    }
    fdct_pass<true>(row_in, ws + y * kN);
  }
  // Columns.
  std::int64_t col_in[kN];
  std::int64_t col_out[kN];
  Coeffs8 out;
  for (int u = 0; u < kN; ++u) {
    for (int y = 0; y < kN; ++y) col_in[y] = ws[y * kN + u];
    fdct_pass<false>(col_in, col_out);
    for (int v = 0; v < kN; ++v) {
      out[static_cast<std::size_t>(v * kN + u)] =
          static_cast<std::int32_t>(col_out[v]);
    }
  }
  return out;
}

Block8 inverse_dct8(const Coeffs8& coeffs) {
  std::int64_t col_in[kN];
  std::int64_t col_out[kN];
  std::int64_t ws[kN * kN];
  // Columns (inverse).
  for (int u = 0; u < kN; ++u) {
    for (int v = 0; v < kN; ++v) {
      col_in[v] = coeffs[static_cast<std::size_t>(v * kN + u)];
    }
    idct_pass<true>(col_in, col_out);
    for (int y = 0; y < kN; ++y) ws[y * kN + u] = col_out[y];
  }
  // Rows (inverse).
  std::int64_t row_out[kN];
  Block8 out;
  for (int y = 0; y < kN; ++y) {
    idct_pass<false>(ws + y * kN, row_out);
    for (int x = 0; x < kN; ++x) {
      out[static_cast<std::size_t>(y * kN + x)] = static_cast<Residual>(
          std::max<std::int64_t>(-32768,
                                 std::min<std::int64_t>(32767, row_out[x])));
    }
  }
  return out;
}

Coeffs8 forward_dct8_ref(const Block8& block) {
  const auto& B = basis().m;
  double tmp[kN][kN];
  // Rows.
  for (int y = 0; y < kN; ++y) {
    for (int u = 0; u < kN; ++u) {
      double acc = 0.0;
      for (int x = 0; x < kN; ++x) {
        acc += B[u][x] * static_cast<double>(block[static_cast<std::size_t>(y * kN + x)]);
      }
      tmp[y][u] = acc;
    }
  }
  // Columns.
  Coeffs8 out;
  for (int v = 0; v < kN; ++v) {
    for (int u = 0; u < kN; ++u) {
      double acc = 0.0;
      for (int y = 0; y < kN; ++y) acc += B[v][y] * tmp[y][u];
      out[static_cast<std::size_t>(v * kN + u)] =
          static_cast<std::int32_t>(std::llround(acc));
    }
  }
  return out;
}

Block8 inverse_dct8_ref(const Coeffs8& coeffs) {
  const auto& B = basis().m;
  double tmp[kN][kN];
  // Columns (inverse).
  for (int u = 0; u < kN; ++u) {
    for (int y = 0; y < kN; ++y) {
      double acc = 0.0;
      for (int v = 0; v < kN; ++v) {
        acc += B[v][y] * static_cast<double>(coeffs[static_cast<std::size_t>(v * kN + u)]);
      }
      tmp[y][u] = acc;
    }
  }
  // Rows (inverse).
  Block8 out;
  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) {
      double acc = 0.0;
      for (int u = 0; u < kN; ++u) acc += B[u][x] * tmp[y][u];
      const long long v = std::llround(acc);
      out[static_cast<std::size_t>(y * kN + x)] = static_cast<Residual>(
          std::max<long long>(-32768, std::min<long long>(32767, v)));
    }
  }
  return out;
}

}  // namespace qosctrl::media

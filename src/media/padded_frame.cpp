#include "media/padded_frame.h"

#include <cstring>

namespace qosctrl::media {

PaddedFrame::PaddedFrame(const Frame& frame, int pad) {
  update_from(frame, pad);
}

void PaddedFrame::update_from(const Frame& frame, int pad) {
  QC_EXPECT(!frame.empty(), "cannot pad an empty frame");
  QC_EXPECT(pad > 0, "pad must be positive");
  const int w = frame.width();
  const int h = frame.height();
  if (w != width_ || h != height_ || pad != pad_) {
    width_ = w;
    height_ = h;
    pad_ = pad;
    stride_ = w + 2 * pad;
    data_.resize(static_cast<std::size_t>(stride_) *
                 static_cast<std::size_t>(h + 2 * pad));
    origin_ = data_.data() + static_cast<std::ptrdiff_t>(pad_) * stride_ +
              pad_;
  }

  // Interior rows with left/right border replication.
  for (int y = 0; y < h; ++y) {
    Sample* dst = origin_ + static_cast<std::ptrdiff_t>(y) * stride_;
    const Sample* src = frame.row(y);
    std::memcpy(dst, src, static_cast<std::size_t>(w));
    std::memset(dst - pad_, src[0], static_cast<std::size_t>(pad_));
    std::memset(dst + w, src[w - 1], static_cast<std::size_t>(pad_));
  }
  // Top and bottom margins replicate the first/last padded row whole.
  const Sample* first = origin_ - pad_;
  const Sample* last =
      origin_ + static_cast<std::ptrdiff_t>(h - 1) * stride_ - pad_;
  for (int y = 1; y <= pad_; ++y) {
    std::memcpy(origin_ - static_cast<std::ptrdiff_t>(y) * stride_ - pad_,
                first, static_cast<std::size_t>(stride_));
    std::memcpy(origin_ + static_cast<std::ptrdiff_t>(h - 1 + y) * stride_ -
                    pad_,
                last, static_cast<std::size_t>(stride_));
  }
}

}  // namespace qosctrl::media

// 8x8 type-II DCT and its inverse.
//
// Separable implementation with a precomputed 8x8 cosine basis in
// double precision; coefficients are rounded to 32-bit integers.  The
// pair is not bit-exact (no IEEE DCT is) but round-trips within +/-1
// per sample for arbitrary 9-bit residual input, which the tests pin
// down.  Throughput is irrelevant here: the *virtual* platform charges
// the cycle costs; host-side math only has to be correct.
#pragma once

#include "media/frame.h"

namespace qosctrl::media {

/// Forward 8x8 DCT of a residual block.
Coeffs8 forward_dct8(const Block8& block);

/// Inverse 8x8 DCT back to (rounded) residual samples.
Block8 inverse_dct8(const Coeffs8& coeffs);

}  // namespace qosctrl::media

// 8x8 type-II DCT and its inverse.
//
// The production pair (forward_dct8 / inverse_dct8) is a separable
// fixed-point integer transform built from LLM-style butterflies (the
// structure popularized by libjpeg's "islow" path), descaled to the
// orthonormal range so coefficients are interchangeable with the
// double-precision reference pair kept below.  The integer pair is not
// bit-exact with the reference (no two rounding schemes are) but tracks
// it within +/-1 per coefficient and round-trips 9-bit residuals within
// +/-1 per sample; the tests pin both bounds and a round-trip PSNR
// floor.  Unlike the reference — a triple-loop double matrix product —
// the butterflies run in a handful of integer multiplies per row, which
// matters now that benchmarks drive millions of blocks through it.
//
// Both directions dispatch through media::simd::active_kernels(): the
// scalar butterflies live in media/simd/kernels_scalar.cpp and the
// AVX2 backend vectorizes the same network 8 lanes wide, bit-exact
// over the encoder's input domain (|residual| <= 1023 forward,
// |coefficient| <= 65536 inverse — see media/simd/kernels.h).
#pragma once

#include "media/frame.h"

namespace qosctrl::media {

/// Forward 8x8 DCT of a residual block (fixed-point integer kernel).
Coeffs8 forward_dct8(const Block8& block);

/// Inverse 8x8 DCT back to (rounded) residual samples.
Block8 inverse_dct8(const Coeffs8& coeffs);

/// Double-precision reference pair: the original implementation, kept
/// as the oracle for equivalence tests and the ref side of bench_micro.
Coeffs8 forward_dct8_ref(const Block8& block);
Block8 inverse_dct8_ref(const Coeffs8& coeffs);

}  // namespace qosctrl::media

#include "media/intra.h"

#include <algorithm>
#include <cstring>

namespace qosctrl::media {
namespace {

constexpr int kMb = kMacroBlockSize;

// Frames tile exactly into macroblocks, so the row of neighbors above
// exists as a whole iff y0 > 0, and the column to the left iff x0 > 0:
// the per-pixel in_bounds probes of the scalar version reduce to two
// checks hoisted out of the loops, and all reads become dense spans.

std::array<Sample, 256> predict_dc(const Frame& recon, int x0, int y0) {
  int sum = 0;
  int count = 0;
  if (y0 > 0) {
    const Sample* top = recon.row(y0 - 1) + x0;
    for (int x = 0; x < kMb; ++x) sum += top[x];
    count += kMb;
  }
  if (x0 > 0) {
    for (int y = 0; y < kMb; ++y) sum += recon.row(y0 + y)[x0 - 1];
    count += kMb;
  }
  const Sample dc =
      count > 0 ? static_cast<Sample>((sum + count / 2) / count) : 128;
  std::array<Sample, 256> out;
  out.fill(dc);
  return out;
}

std::array<Sample, 256> predict_horizontal(const Frame& recon, int x0,
                                           int y0) {
  std::array<Sample, 256> out;
  Sample* dst = out.data();
  for (int y = 0; y < kMb; ++y) {
    const Sample left = x0 > 0 ? recon.row(y0 + y)[x0 - 1] : 128;
    std::memset(dst, left, kMb);
    dst += kMb;
  }
  return out;
}

std::array<Sample, 256> predict_vertical(const Frame& recon, int x0, int y0) {
  std::array<Sample, 256> out;
  if (y0 > 0) {
    const Sample* top = recon.row(y0 - 1) + x0;
    Sample* dst = out.data();
    for (int y = 0; y < kMb; ++y) {
      std::memcpy(dst, top, kMb);
      dst += kMb;
    }
  } else {
    out.fill(128);
  }
  return out;
}

}  // namespace

std::array<Sample, 256> intra_prediction_mode(const Frame& recon, int x0,
                                              int y0, IntraMode mode) {
  switch (mode) {
    case IntraMode::kDc:
      return predict_dc(recon, x0, y0);
    case IntraMode::kHorizontal:
      return predict_horizontal(recon, x0, y0);
    case IntraMode::kVertical:
      return predict_vertical(recon, x0, y0);
  }
  std::array<Sample, 256> out;
  out.fill(128);
  return out;
}

IntraResult intra_predict(const Frame& source, const Frame& recon, int x0,
                          int y0) {
  const std::array<Sample, 256> src = read_macroblock(source, x0, y0);

  IntraResult best;
  best.mode = IntraMode::kDc;
  best.prediction = predict_dc(recon, x0, y0);
  best.sad = sad_256(src, best.prediction);

  const auto consider = [&](IntraMode mode,
                            const std::array<Sample, 256>& pred) {
    const std::int64_t s = sad_256(src, pred);
    if (s < best.sad) {
      best.mode = mode;
      best.prediction = pred;
      best.sad = s;
    }
  };
  consider(IntraMode::kHorizontal, predict_horizontal(recon, x0, y0));
  consider(IntraMode::kVertical, predict_vertical(recon, x0, y0));
  return best;
}

}  // namespace qosctrl::media

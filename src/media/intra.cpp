#include "media/intra.h"

#include <algorithm>

namespace qosctrl::media {
namespace {

constexpr int kMb = kMacroBlockSize;

std::array<Sample, 256> predict_dc(const Frame& recon, int x0, int y0) {
  int sum = 0;
  int count = 0;
  for (int x = 0; x < kMb; ++x) {
    if (recon.in_bounds(x0 + x, y0 - 1)) {
      sum += recon.at(x0 + x, y0 - 1);
      ++count;
    }
  }
  for (int y = 0; y < kMb; ++y) {
    if (recon.in_bounds(x0 - 1, y0 + y)) {
      sum += recon.at(x0 - 1, y0 + y);
      ++count;
    }
  }
  const Sample dc =
      count > 0 ? static_cast<Sample>((sum + count / 2) / count) : 128;
  std::array<Sample, 256> out;
  out.fill(dc);
  return out;
}

std::array<Sample, 256> predict_horizontal(const Frame& recon, int x0,
                                           int y0) {
  std::array<Sample, 256> out;
  for (int y = 0; y < kMb; ++y) {
    const Sample left =
        recon.in_bounds(x0 - 1, y0 + y) ? recon.at(x0 - 1, y0 + y) : 128;
    for (int x = 0; x < kMb; ++x) {
      out[static_cast<std::size_t>(y * kMb + x)] = left;
    }
  }
  return out;
}

std::array<Sample, 256> predict_vertical(const Frame& recon, int x0, int y0) {
  std::array<Sample, 256> out;
  for (int x = 0; x < kMb; ++x) {
    const Sample top =
        recon.in_bounds(x0 + x, y0 - 1) ? recon.at(x0 + x, y0 - 1) : 128;
    for (int y = 0; y < kMb; ++y) {
      out[static_cast<std::size_t>(y * kMb + x)] = top;
    }
  }
  return out;
}

}  // namespace

IntraResult intra_predict(const Frame& source, const Frame& recon, int x0,
                          int y0) {
  const std::array<Sample, 256> src = read_macroblock(source, x0, y0);

  IntraResult best;
  best.mode = IntraMode::kDc;
  best.prediction = predict_dc(recon, x0, y0);
  best.sad = sad_256(src, best.prediction);

  const auto consider = [&](IntraMode mode,
                            const std::array<Sample, 256>& pred) {
    const std::int64_t s = sad_256(src, pred);
    if (s < best.sad) {
      best.mode = mode;
      best.prediction = pred;
      best.sad = s;
    }
  };
  consider(IntraMode::kHorizontal, predict_horizontal(recon, x0, y0));
  consider(IntraMode::kVertical, predict_vertical(recon, x0, y0));
  return best;
}

}  // namespace qosctrl::media

// A standalone sample plane for chroma (4:2:0 subsampled) data.
//
// Luma lives in media::Frame, which enforces 16-pixel macroblock
// tiling; chroma planes are half-resolution and tile into 8x8 blocks,
// so they get their own lighter type with the same pixel accessors.
#pragma once

#include <cstdint>
#include <vector>

#include "media/frame.h"

namespace qosctrl::media {

/// An 8-bit sample plane whose dimensions are multiples of 8.
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, Sample fill = 128);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  Sample at(int x, int y) const {
    QC_DCHECK(in_bounds(x, y), "plane pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  void set(int x, int y, Sample v) {
    QC_DCHECK(in_bounds(x, y), "plane pixel out of bounds");
    data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = v;
  }

  /// Distance in samples between vertically adjacent pixels.
  int stride() const { return width_; }

  /// Raw pointer to row `y` (column 0); bounds hoisted to the call.
  const Sample* row(int y) const {
    QC_DCHECK(y >= 0 && y < height_, "plane row out of bounds");
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }
  Sample* row(int y) {
    QC_DCHECK(y >= 0 && y < height_, "plane row out of bounds");
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }
  Sample at_clamped(int x, int y) const;
  bool in_bounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  const std::vector<Sample>& data() const { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Sample> data_;
};

/// Reads the 8x8 block at (x0, y0) as residual samples.
Block8 read_plane_block8(const Plane& plane, int x0, int y0);

/// Writes an 8x8 block of already-clamped samples.
void write_plane_block8(Plane& plane, int x0, int y0,
                        const std::array<Sample, 64>& pixels);

/// Motion compensation on a chroma plane with a *luma* half-pel vector:
/// chroma moves at half the luma displacement, i.e. quarter-pel chroma
/// positions rounded to the nearest half pel (the classic MPEG-style
/// approximation: cdx2 = round-to-even-aware dx2 / 2).  Returns the 8x8
/// prediction block at (x0, y0).
std::array<Sample, 64> chroma_motion_compensate(const Plane& reference,
                                                int x0, int y0, int luma_dx2,
                                                int luma_dy2);

/// DC intra prediction for the 8x8 chroma block at (x0, y0): the mean
/// of the reconstructed samples directly above and to the left, 128
/// when no neighbors exist.  Shared by encoder and decoder so intra
/// chroma reconstruction is bit-exact.
std::array<Sample, 64> chroma_dc_prediction(const Plane& recon, int x0,
                                            int y0);

/// Mean squared error between two planes (for chroma PSNR).
double plane_sse(const Plane& a, const Plane& b);

}  // namespace qosctrl::media

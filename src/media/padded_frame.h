// Border-extended (padded) reference frames.
//
// Motion search and compensation read blocks displaced off the frame
// edge; the scalar kernels resolve this with a per-pixel clamp branch
// (Frame::at_clamped).  A PaddedFrame replicates the border once into a
// margin of `pad` pixels on every side, so kernels can read contiguous
// rows for any displacement within the margin with *no* per-pixel
// bounds or clamp logic — the clamping is hoisted into a one-time pad
// step that costs O(perimeter) per frame instead of O(pixels) per
// search candidate.
//
// row(y) stays valid for x in [-pad, width + pad) and y in
// [-pad, height + pad), and replicates Frame::at_clamped exactly over
// that window (tested bit-exact).
#pragma once

#include <vector>

#include "media/frame.h"

namespace qosctrl::media {

class PaddedFrame {
 public:
  /// Default margin: covers the widest encoder search window (radius 8)
  /// plus half-pel interpolation with room to spare.
  static constexpr int kDefaultPad = 16;

  PaddedFrame() = default;
  explicit PaddedFrame(const Frame& frame, int pad = kDefaultPad);

  /// Re-pads from `frame` in place; reallocates only when the geometry
  /// changed.  This is the once-per-frame step the encoder runs when
  /// the reference is swapped.
  void update_from(const Frame& frame, int pad = kDefaultPad);

  int width() const { return width_; }
  int height() const { return height_; }
  int pad() const { return pad_; }
  bool empty() const { return data_.empty(); }

  /// Distance in samples between vertically adjacent pixels.
  int stride() const { return stride_; }

  /// Pointer to (0, y) of the interior image; valid for
  /// x in [-pad, width + pad).  y may likewise range over
  /// [-pad, height + pad).
  const Sample* row(int y) const {
    QC_DCHECK(y >= -pad_ && y < height_ + pad_, "padded row out of range");
    return origin_ + static_cast<std::ptrdiff_t>(y) * stride_;
  }

  /// Border-replicated read, matching Frame::at_clamped for
  /// coordinates within the margin.
  Sample at(int x, int y) const {
    QC_DCHECK(x >= -pad_ && x < width_ + pad_, "padded column out of range");
    return row(y)[x];
  }

  /// True when a 16x16 block read at (x0 + dx, y0 + dy) — plus one
  /// extra pixel right/down for half-pel interpolation — stays inside
  /// the padded surface.
  bool covers_block16(int x0, int y0, int dx, int dy) const {
    return x0 + dx >= -pad_ && y0 + dy >= -pad_ &&
           x0 + dx + kMacroBlockSize + 1 <= width_ + pad_ &&
           y0 + dy + kMacroBlockSize + 1 <= height_ + pad_;
  }

  /// covers_block16 for a vector in half-pel units, owning the
  /// floor-division split so callers need not repeat the rounding
  /// convention of motion_compensate_halfpel.
  bool covers_block16_halfpel(int x0, int y0, int dx2, int dy2) const {
    const int ix = (dx2 >= 0) ? dx2 / 2 : (dx2 - 1) / 2;
    const int iy = (dy2 >= 0) ? dy2 / 2 : (dy2 - 1) / 2;
    return covers_block16(x0, y0, ix, iy);
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int pad_ = 0;
  int stride_ = 0;
  Sample* origin_ = nullptr;  ///< &data_[pad_ * stride_ + pad_]
  std::vector<Sample> data_;
};

}  // namespace qosctrl::media

// Procedural video source — the stand-in for the paper's camera and its
// 582-frame, 9-sequence benchmark.
//
// Each sequence ("scene") has its own texture, global pan velocity, and
// a handful of moving objects; consecutive scenes are separated by hard
// cuts.  The generator is deterministic in (config, seed) and cheap to
// evaluate at any frame index (no inter-frame state), so tests can
// sample frames at random.
//
// The properties the experiments rely on:
//  * hard cuts defeat motion estimation -> expensive, mostly-intra
//    frames (the paper's I-frame jumps in Figures 6-9);
//  * per-scene motion magnitude varies -> per-scene ME load and
//    bitrate levels differ (the plateaus between jumps);
//  * mild sensor noise keeps residuals non-degenerate.
#pragma once

#include <vector>

#include "media/frame.h"
#include "media/yuv.h"
#include "util/rng.h"

namespace qosctrl::media {

struct VideoConfig {
  int width = 176;    ///< QCIF by default
  int height = 144;
  int num_frames = 582;   ///< paper benchmark length
  int num_scenes = 9;     ///< paper: 9 sequences
  double noise_amplitude = 3.0;  ///< uniform sensor noise, gray levels
  std::uint64_t seed = 2005;
};

/// Deterministic scene-based video generator.
class SyntheticVideo {
 public:
  explicit SyntheticVideo(const VideoConfig& config);

  const VideoConfig& config() const { return config_; }
  int num_frames() const { return config_.num_frames; }

  /// Renders the luma of frame `index` (0-based).
  Frame frame(int index) const;

  /// Renders the full 4:2:0 frame: the luma of frame() plus per-scene
  /// chroma fields that pan with the same motion (so chroma is
  /// motion-compensable exactly like luma).
  YuvFrame frame_yuv(int index) const;

  /// Scene index of a frame (0-based).
  int scene_of(int index) const;

  /// True when `index` is the first frame of a new scene (a hard cut);
  /// frame 0 counts as a cut.
  bool is_scene_cut(int index) const;

  /// First frame index of each scene.
  std::vector<int> scene_starts() const;

 private:
  struct MovingObject {
    double cx, cy;      ///< center at scene start (pixels)
    double vx, vy;      ///< velocity (pixels/frame)
    double radius;      ///< half-size
    double brightness;  ///< additive level
    double phase;       ///< texture phase
    double tint_cb, tint_cr;  ///< chroma shift inside the object
  };
  struct Scene {
    double base_level;     ///< background brightness
    double fx1, fy1, ph1;  ///< background sinusoid 1 (freq/phase)
    double fx2, fy2, ph2;  ///< background sinusoid 2
    double amp1, amp2;
    double pan_vx, pan_vy;  ///< global pan velocity (pixels/frame)
    double cb_base, cr_base;  ///< scene color cast
    double chroma_freq, chroma_amp, chroma_phase;  ///< chroma texture
    std::vector<MovingObject> objects;
  };

  VideoConfig config_;
  std::vector<Scene> scenes_;
  std::vector<int> starts_;  ///< first frame of each scene
};

}  // namespace qosctrl::media

// Entropy coding of quantized 8x8 blocks: zigzag scan, zero-run/level
// pairs, and signed/unsigned exp-Golomb codes, plus the matching
// decoder so tests can verify lossless round trips.  The bit counts it
// produces feed both the rate controller and the Compress action's
// content-coupled work scale.
#pragma once

#include <optional>

#include "media/frame.h"
#include "util/bitio.h"

namespace qosctrl::media {

/// The standard 8x8 zigzag scan order (index i -> raster position).
const std::array<int, 64>& zigzag_order();

/// Writes an unsigned exp-Golomb code for v >= 0.
void put_ue(util::BitWriter& bw, std::uint32_t v);
/// Reads an unsigned exp-Golomb code.
std::uint32_t get_ue(util::BitReader& br);

/// Signed exp-Golomb mapping (0, 1, -1, 2, -2, ...).
void put_se(util::BitWriter& bw, std::int32_t v);
std::int32_t get_se(util::BitReader& br);

/// Encodes one quantized block as (run, level) pairs in zigzag order
/// followed by an end-of-block marker.  Returns the number of bits
/// appended to `bw`.
std::int64_t encode_block(util::BitWriter& bw, const Coeffs8& levels);

/// Decodes one block previously written by encode_block.  Returns
/// std::nullopt on a corrupt stream (zero-run past the end of the
/// block, or reader overrun) — hostile input must fail, not abort.
std::optional<Coeffs8> decode_block(util::BitReader& br);

}  // namespace qosctrl::media

// Intra prediction for macroblocks coded without a usable temporal
// reference (scene cuts, uncovered content, the very first frame).
//
// Three classic modes — DC, horizontal, vertical — predicted from the
// already-reconstructed pixels above and to the left of the macroblock
// in the *current* frame; the best mode (smallest SAD) wins.
#pragma once

#include <array>

#include "media/frame.h"

namespace qosctrl::media {

enum class IntraMode : std::uint8_t { kDc = 0, kHorizontal, kVertical };

struct IntraResult {
  IntraMode mode = IntraMode::kDc;
  std::array<Sample, 256> prediction{};
  std::int64_t sad = 0;  ///< SAD between source and chosen prediction
};

/// Predicts the 16x16 macroblock at (x0, y0) of `source` from the
/// reconstructed neighborhood `recon` (same geometry).  Neighbors
/// outside the frame fall back to mid-gray (128), the standard
/// convention for unavailable references.
IntraResult intra_predict(const Frame& source, const Frame& recon, int x0,
                          int y0);

/// The prediction block for one specific mode — the shared primitive
/// behind intra_predict's mode decision and the decoder's
/// reconstruction, so both sides are bit-exact by construction.
std::array<Sample, 256> intra_prediction_mode(const Frame& recon, int x0,
                                              int y0, IntraMode mode);

}  // namespace qosctrl::media

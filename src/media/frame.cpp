#include "media/frame.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "media/simd/kernels.h"

namespace qosctrl::media {

Frame::Frame(int width, int height, Sample fill)
    : width_(width), height_(height) {
  QC_EXPECT(width > 0 && height > 0, "frame dimensions must be positive");
  QC_EXPECT(width % kMacroBlockSize == 0 && height % kMacroBlockSize == 0,
            "frame dimensions must be multiples of the macroblock size");
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               fill);
}

Sample Frame::at_clamped(int x, int y) const {
  const int cx = std::clamp(x, 0, width_ - 1);
  const int cy = std::clamp(y, 0, height_ - 1);
  return at(cx, cy);
}

std::pair<int, int> Frame::mb_origin(int mb) const {
  QC_EXPECT(mb >= 0 && mb < num_macroblocks(), "macroblock index out of range");
  const int col = mb % mb_cols();
  const int row = mb / mb_cols();
  return {col * kMacroBlockSize, row * kMacroBlockSize};
}

std::array<Sample, 256> read_macroblock(const Frame& frame, int x0, int y0) {
  QC_EXPECT(frame.in_bounds(x0, y0) &&
                frame.in_bounds(x0 + kMacroBlockSize - 1,
                                y0 + kMacroBlockSize - 1),
            "macroblock out of bounds");
  std::array<Sample, 256> out;
  Sample* dst = out.data();
  for (int y = 0; y < kMacroBlockSize; ++y) {
    std::memcpy(dst, frame.row(y0 + y) + x0, kMacroBlockSize);
    dst += kMacroBlockSize;
  }
  return out;
}

void write_macroblock(Frame& frame, int x0, int y0,
                      const std::array<Sample, 256>& pixels) {
  QC_EXPECT(frame.in_bounds(x0, y0) &&
                frame.in_bounds(x0 + kMacroBlockSize - 1,
                                y0 + kMacroBlockSize - 1),
            "macroblock out of bounds");
  const Sample* src = pixels.data();
  for (int y = 0; y < kMacroBlockSize; ++y) {
    std::memcpy(frame.row(y0 + y) + x0, src, kMacroBlockSize);
    src += kMacroBlockSize;
  }
}

Block8 read_block8(const Frame& frame, int x0, int y0, int b) {
  QC_EXPECT(b >= 0 && b < 4, "sub-block index must be 0..3");
  const int bx = x0 + (b % 2) * kTransformSize;
  const int by = y0 + (b / 2) * kTransformSize;
  QC_EXPECT(frame.in_bounds(bx, by) &&
                frame.in_bounds(bx + kTransformSize - 1,
                                by + kTransformSize - 1),
            "sub-block out of bounds");
  Block8 out;
  for (int y = 0; y < kTransformSize; ++y) {
    const Sample* src = frame.row(by + y) + bx;
    Residual* dst = out.data() + y * kTransformSize;
    for (int x = 0; x < kTransformSize; ++x) {
      dst[x] = static_cast<Residual>(src[x]);
    }
  }
  return out;
}

std::int64_t sad_256(const std::array<Sample, 256>& a,
                     const std::array<Sample, 256>& b) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    acc += std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i]));
  }
  return acc;
}

std::int64_t frame_sse_i64(const Frame& a, const Frame& b) {
  QC_EXPECT(a.width() == b.width() && a.height() == b.height(),
            "frames must have equal dimensions");
  // Frames are contiguous row-major buffers of width * height samples,
  // a multiple of 256, so the whole plane is one kernel call.
  return simd::active_kernels().sum_sq_diff(a.data().data(),
                                            b.data().data(),
                                            a.data().size());
}

double frame_sse(const Frame& a, const Frame& b) {
  // Exact: a frame's worth of 8-bit squared differences is far below
  // 2^53, so this double is bit-identical with the old double
  // accumulation.
  return static_cast<double>(frame_sse_i64(a, b));
}

double psnr_from_sse(std::int64_t sse, std::int64_t pixels, double cap) {
  QC_EXPECT(pixels > 0, "PSNR needs a non-empty frame");
  if (sse <= 0) return cap;
  const double mse =
      static_cast<double>(sse) / static_cast<double>(pixels);
  return std::min(cap, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double psnr(const Frame& a, const Frame& b, double cap) {
  return psnr_from_sse(frame_sse_i64(a, b),
                       static_cast<std::int64_t>(a.data().size()), cap);
}

}  // namespace qosctrl::media

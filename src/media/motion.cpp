#include "media/motion.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace qosctrl::media {
namespace {

/// SAD between the macroblock of `current` at (x0, y0) and the
/// border-clamped block of `reference` at (x0+dx, y0+dy), aborting as
/// soon as the partial sum exceeds `best`.
std::int64_t sad_at(const Frame& current, const Frame& reference, int x0,
                    int y0, int dx, int dy, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      const int a = current.at(x0 + x, y0 + y);
      const int b = reference.at_clamped(x0 + x + dx, y0 + y + dy);
      acc += std::abs(a - b);
    }
    if (acc >= best) return acc;  // cannot improve; partial sum suffices
  }
  return acc;
}

}  // namespace

int search_radius_for_level(std::size_t qi) {
  // Monotone in quality; level 0 is "zero vector only" matching the
  // paper's nearly-free Motion_Estimate at q=0 (215 cycles average).
  static constexpr int kRadii[8] = {0, 1, 2, 3, 4, 5, 6, 8};
  QC_EXPECT(qi < 8, "quality index out of range for search radius");
  return kRadii[qi];
}

namespace {

/// Half-pel refinement around the full-pel winner.
void refine_half_pel(const Frame& current, const Frame& reference, int x0,
                     int y0, MotionResult& result) {
  const auto src = read_macroblock(current, x0, y0);
  for (int fy = -1; fy <= 1; ++fy) {
    for (int fx = -1; fx <= 1; ++fx) {
      if (fx == 0 && fy == 0) continue;
      const int dx2 = 2 * result.dx + fx;
      const int dy2 = 2 * result.dy + fy;
      const auto pred =
          motion_compensate_halfpel(reference, x0, y0, dx2, dy2);
      const std::int64_t s = sad_256(src, pred);
      ++result.points_examined;
      if (s < result.sad) {
        result.sad = s;
        result.dx2 = dx2;
        result.dy2 = dy2;
      }
    }
  }
}

}  // namespace

MotionResult estimate_motion(const Frame& current, const Frame& reference,
                             int x0, int y0, const MotionConfig& config) {
  QC_EXPECT(config.radius >= 0, "search radius must be >= 0");
  MotionResult result;
  const int r = config.radius;
  result.points_total = (2 * r + 1) * (2 * r + 1);

  std::int64_t best = sad_at(current, reference, x0, y0, 0, 0,
                             INT64_C(1) << 60);
  result.sad = best;
  result.points_examined = 1;
  const auto finish = [&]() -> MotionResult {
    result.dx2 = 2 * result.dx;
    result.dy2 = 2 * result.dy;
    if (config.half_pel) {
      refine_half_pel(current, reference, x0, y0, result);
    }
    return result;
  };
  if (config.early_exit_sad > 0 && best <= config.early_exit_sad) {
    return finish();  // the zero vector is already good enough
  }
  // Spiral: rings of increasing Chebyshev radius.
  for (int ring = 1; ring <= r; ++ring) {
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const std::int64_t s =
            sad_at(current, reference, x0, y0, dx, dy, best);
        ++result.points_examined;
        if (s < best) {
          best = s;
          result.dx = dx;
          result.dy = dy;
          result.sad = s;
        }
        if (config.early_exit_sad > 0 && best <= config.early_exit_sad) {
          return finish();
        }
      }
    }
  }
  return finish();
}

std::array<Sample, 256> motion_compensate(const Frame& reference, int x0,
                                          int y0, int dx, int dy) {
  std::array<Sample, 256> out;
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      out[static_cast<std::size_t>(y * kMacroBlockSize + x)] =
          reference.at_clamped(x0 + x + dx, y0 + y + dy);
    }
  }
  return out;
}

std::array<Sample, 256> motion_compensate_halfpel(const Frame& reference,
                                                  int x0, int y0, int dx2,
                                                  int dy2) {
  // Integer part (floor division toward minus infinity) + fraction.
  const int ix = (dx2 >= 0) ? dx2 / 2 : (dx2 - 1) / 2;
  const int iy = (dy2 >= 0) ? dy2 / 2 : (dy2 - 1) / 2;
  const int fx = dx2 - 2 * ix;  // 0 or 1
  const int fy = dy2 - 2 * iy;
  if (fx == 0 && fy == 0) {
    return motion_compensate(reference, x0, y0, ix, iy);
  }
  std::array<Sample, 256> out;
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      const int bx = x0 + x + ix;
      const int by = y0 + y + iy;
      const int a = reference.at_clamped(bx, by);
      int v;
      if (fx == 1 && fy == 0) {
        v = (a + reference.at_clamped(bx + 1, by) + 1) / 2;
      } else if (fx == 0) {  // fy == 1
        v = (a + reference.at_clamped(bx, by + 1) + 1) / 2;
      } else {
        v = (a + reference.at_clamped(bx + 1, by) +
             reference.at_clamped(bx, by + 1) +
             reference.at_clamped(bx + 1, by + 1) + 2) / 4;
      }
      out[static_cast<std::size_t>(y * kMacroBlockSize + x)] =
          static_cast<Sample>(v);
    }
  }
  return out;
}

}  // namespace qosctrl::media

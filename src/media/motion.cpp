#include "media/motion.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "media/simd/kernels.h"
#include "util/check.h"

namespace qosctrl::media {

std::int64_t sad_16x16(const Sample* cur, const Sample* ref,
                       std::ptrdiff_t ref_stride, std::int64_t best) {
  return simd::active_kernels().sad_16x16(cur, ref, ref_stride, best);
}

namespace {

/// Scalar fallback: SAD between the cached block `cur` and the
/// border-clamped block of `reference` at (bx, by), with the same
/// per-row early exit as sad_16x16.
std::int64_t sad_clamped(const Sample* cur, const Frame& reference, int bx,
                         int by, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      const int a = cur[x];
      const int b = reference.at_clamped(bx + x, by + y);
      acc += std::abs(a - b);
    }
    if (acc >= best) return acc;
    cur += kMacroBlockSize;
  }
  return acc;
}

/// Copies a 16x16 block from `src` (row stride `stride`) into `out`.
void copy_block16(const Sample* src, std::ptrdiff_t stride,
                  std::array<Sample, 256>& out) {
  Sample* dst = out.data();
  for (int y = 0; y < kMacroBlockSize; ++y) {
    std::memcpy(dst, src, kMacroBlockSize);
    src += stride;
    dst += kMacroBlockSize;
  }
}

/// Bilinear half-pel interpolation of a 16x16 block anchored at `src`;
/// (fx, fy) in {0, 1}^2 \ {(0, 0)}.  Reads one extra column/row.
void halfpel_block16(const Sample* src, std::ptrdiff_t stride, int fx,
                     int fy, std::array<Sample, 256>& out) {
  simd::active_kernels().halfpel_16x16(src, stride, fx, fy, out.data());
}

/// True when the 16x16 block at (bx, by) lies fully inside `frame`.
bool block16_interior(const Frame& frame, int bx, int by) {
  return bx >= 0 && by >= 0 && bx + kMacroBlockSize <= frame.width() &&
         by + kMacroBlockSize <= frame.height();
}

/// Reference views abstract where candidate blocks are read from, so
/// the spiral search is written once.  Both are bit-exact with the
/// original clamped scalar code.

struct PaddedRefView {
  /// Padded references read any in-window candidate with the span
  /// kernel, so ring candidates can be batched 4 per kernel call.
  static constexpr bool kBatch = true;

  const PaddedFrame* ref;

  std::int64_t sad(const Sample* cur, int bx, int by,
                   std::int64_t best) const {
    QC_DCHECK(ref->covers_block16(0, 0, bx, by),
              "search displacement exceeds reference padding");
    return sad_16x16(cur, ref->row(by) + bx, ref->stride(), best);
  }
  void sad4(const Sample* cur, int x0, int y0, const int* dx, const int* dy,
            std::int64_t best, std::int64_t out[4]) const {
    const Sample* refs[4];
    for (int k = 0; k < 4; ++k) {
      QC_DCHECK(ref->covers_block16(0, 0, x0 + dx[k], y0 + dy[k]),
                "search displacement exceeds reference padding");
      refs[k] = ref->row(y0 + dy[k]) + x0 + dx[k];
    }
    simd::active_kernels().sad_16x16_x4(cur, refs, ref->stride(), best, out);
  }
  std::array<Sample, 256> compensate_halfpel(int x0, int y0, int dx2,
                                             int dy2) const {
    return motion_compensate_halfpel(*ref, x0, y0, dx2, dy2);
  }
};

struct ClampedRefView {
  static constexpr bool kBatch = false;

  const Frame* ref;

  std::int64_t sad(const Sample* cur, int bx, int by,
                   std::int64_t best) const {
    if (block16_interior(*ref, bx, by)) {
      return sad_16x16(cur, ref->row(by) + bx, ref->stride(), best);
    }
    return sad_clamped(cur, *ref, bx, by, best);
  }
  std::array<Sample, 256> compensate_halfpel(int x0, int y0, int dx2,
                                             int dy2) const {
    return motion_compensate_halfpel(*ref, x0, y0, dx2, dy2);
  }
};

/// Half-pel refinement around the full-pel winner.
template <typename RefView>
void refine_half_pel(const std::array<Sample, 256>& src, const RefView& view,
                     int x0, int y0, MotionResult& result) {
  for (int fy = -1; fy <= 1; ++fy) {
    for (int fx = -1; fx <= 1; ++fx) {
      if (fx == 0 && fy == 0) continue;
      const int dx2 = 2 * result.dx + fx;
      const int dy2 = 2 * result.dy + fy;
      const auto pred = view.compensate_halfpel(x0, y0, dx2, dy2);
      const std::int64_t s = sad_256(src, pred);
      ++result.points_examined;
      if (s < result.sad) {
        result.sad = s;
        result.dx2 = dx2;
        result.dy2 = dy2;
      }
    }
  }
}

template <typename RefView>
MotionResult estimate_motion_impl(const Frame& current, const RefView& view,
                                  int x0, int y0,
                                  const MotionConfig& config) {
  QC_EXPECT(config.radius >= 0, "search radius must be >= 0");
  QC_EXPECT(x0 >= 0 && y0 >= 0 && x0 + kMacroBlockSize <= current.width() &&
                y0 + kMacroBlockSize <= current.height(),
            "macroblock origin out of bounds");
  MotionResult result;
  const int r = config.radius;
  result.points_total = (2 * r + 1) * (2 * r + 1);

  // The current macroblock is fully interior (frames tile exactly into
  // macroblocks), so cache it once as a contiguous block: every SAD
  // below then runs over two dense spans with no per-pixel checks.
  std::array<Sample, 256> cur;
  copy_block16(current.row(y0) + x0, current.stride(), cur);

  std::int64_t best = view.sad(cur.data(), x0, y0, INT64_C(1) << 60);
  result.sad = best;
  result.points_examined = 1;
  const auto finish = [&]() -> MotionResult {
    result.dx2 = 2 * result.dx;
    result.dy2 = 2 * result.dy;
    if (config.half_pel) {
      refine_half_pel(cur, view, x0, y0, result);
    }
    return result;
  };
  if (config.early_exit_sad > 0 && best <= config.early_exit_sad) {
    return finish();  // the zero vector is already good enough
  }
  // Spiral: rings of increasing Chebyshev radius.  The padded view
  // batches ring candidates 4 per sad_16x16_x4 call (a ring has
  // 8 * ring candidates, always a multiple of 4).  Batching is
  // observationally identical to the sequential loop: the batched
  // kernel returns exact SADs, the scan below updates `best` and
  // checks the early-exit threshold in candidate order, and a
  // threshold hit discards the batch remainder exactly where the
  // sequential loop would have stopped.  The batch kernel prunes only
  // when all four candidates are already beaten (values >= best are
  // partial either way), which affects work done, never values
  // returned.
  if constexpr (RefView::kBatch) {
    int cdx[4];
    int cdy[4];
    std::int64_t sads[4];
    int n = 0;
    // Returns true when the early-exit threshold ends the search.
    const auto flush = [&]() -> bool {
      view.sad4(cur.data(), x0, y0, cdx, cdy, best, sads);
      for (int k = 0; k < n; ++k) {
        ++result.points_examined;
        if (sads[k] < best) {
          best = sads[k];
          result.dx = cdx[k];
          result.dy = cdy[k];
          result.sad = sads[k];
        }
        if (config.early_exit_sad > 0 && best <= config.early_exit_sad) {
          return true;
        }
      }
      n = 0;
      return false;
    };
    for (int ring = 1; ring <= r; ++ring) {
      for (int dy = -ring; dy <= ring; ++dy) {
        const bool edge_row = std::abs(dy) == ring;
        const int step = edge_row ? 1 : 2 * ring;  // skip the ring interior
        for (int dx = -ring; dx <= ring; dx += step) {
          cdx[n] = dx;
          cdy[n] = dy;
          if (++n == 4 && flush()) return finish();
        }
      }
    }
    QC_DCHECK(n == 0, "ring candidate count must be a multiple of 4");
  } else {
    for (int ring = 1; ring <= r; ++ring) {
      for (int dy = -ring; dy <= ring; ++dy) {
        const bool edge_row = std::abs(dy) == ring;
        const int step = edge_row ? 1 : 2 * ring;  // skip the ring interior
        for (int dx = -ring; dx <= ring; dx += step) {
          const std::int64_t s =
              view.sad(cur.data(), x0 + dx, y0 + dy, best);
          ++result.points_examined;
          if (s < best) {
            best = s;
            result.dx = dx;
            result.dy = dy;
            result.sad = s;
          }
          if (config.early_exit_sad > 0 && best <= config.early_exit_sad) {
            return finish();
          }
        }
      }
    }
  }
  return finish();
}

}  // namespace

int search_radius_for_level(std::size_t qi) {
  // Monotone in quality; level 0 is "zero vector only" matching the
  // paper's nearly-free Motion_Estimate at q=0 (215 cycles average).
  static constexpr int kRadii[8] = {0, 1, 2, 3, 4, 5, 6, 8};
  QC_EXPECT(qi < 8, "quality index out of range for search radius");
  return kRadii[qi];
}

MotionResult estimate_motion(const Frame& current, const Frame& reference,
                             int x0, int y0, const MotionConfig& config) {
  return estimate_motion_impl(current, ClampedRefView{&reference}, x0, y0,
                              config);
}

MotionResult estimate_motion(const Frame& current,
                             const PaddedFrame& reference, int x0, int y0,
                             const MotionConfig& config) {
  QC_EXPECT(config.radius + 1 <= reference.pad(),
            "search radius (plus half-pel margin) exceeds reference pad");
  return estimate_motion_impl(current, PaddedRefView{&reference}, x0, y0,
                              config);
}

std::array<Sample, 256> motion_compensate(const Frame& reference, int x0,
                                          int y0, int dx, int dy) {
  std::array<Sample, 256> out;
  if (block16_interior(reference, x0 + dx, y0 + dy)) {
    copy_block16(reference.row(y0 + dy) + x0 + dx, reference.stride(), out);
    return out;
  }
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      out[static_cast<std::size_t>(y * kMacroBlockSize + x)] =
          reference.at_clamped(x0 + x + dx, y0 + y + dy);
    }
  }
  return out;
}

std::array<Sample, 256> motion_compensate(const PaddedFrame& reference,
                                          int x0, int y0, int dx, int dy) {
  QC_EXPECT(reference.covers_block16(x0, y0, dx, dy),
            "motion vector exceeds reference padding");
  std::array<Sample, 256> out;
  copy_block16(reference.row(y0 + dy) + x0 + dx, reference.stride(), out);
  return out;
}

std::array<Sample, 256> motion_compensate_halfpel(const Frame& reference,
                                                  int x0, int y0, int dx2,
                                                  int dy2) {
  // Integer part (floor division toward minus infinity) + fraction.
  const int ix = (dx2 >= 0) ? dx2 / 2 : (dx2 - 1) / 2;
  const int iy = (dy2 >= 0) ? dy2 / 2 : (dy2 - 1) / 2;
  const int fx = dx2 - 2 * ix;  // 0 or 1
  const int fy = dy2 - 2 * iy;
  if (fx == 0 && fy == 0) {
    return motion_compensate(reference, x0, y0, ix, iy);
  }
  std::array<Sample, 256> out;
  const int bx = x0 + ix;
  const int by = y0 + iy;
  // Interpolation reads one extra pixel right/down; hoist the bounds
  // check for the whole (17x17-covering) read.
  if (bx >= 0 && by >= 0 && bx + kMacroBlockSize + 1 <= reference.width() &&
      by + kMacroBlockSize + 1 <= reference.height()) {
    halfpel_block16(reference.row(by) + bx, reference.stride(), fx, fy, out);
    return out;
  }
  for (int y = 0; y < kMacroBlockSize; ++y) {
    for (int x = 0; x < kMacroBlockSize; ++x) {
      const int cx = bx + x;
      const int cy = by + y;
      const int a = reference.at_clamped(cx, cy);
      int v;
      if (fx == 1 && fy == 0) {
        v = (a + reference.at_clamped(cx + 1, cy) + 1) / 2;
      } else if (fx == 0) {  // fy == 1
        v = (a + reference.at_clamped(cx, cy + 1) + 1) / 2;
      } else {
        v = (a + reference.at_clamped(cx + 1, cy) +
             reference.at_clamped(cx, cy + 1) +
             reference.at_clamped(cx + 1, cy + 1) + 2) / 4;
      }
      out[static_cast<std::size_t>(y * kMacroBlockSize + x)] =
          static_cast<Sample>(v);
    }
  }
  return out;
}

std::array<Sample, 256> motion_compensate_halfpel(const PaddedFrame& reference,
                                                  int x0, int y0, int dx2,
                                                  int dy2) {
  const int ix = (dx2 >= 0) ? dx2 / 2 : (dx2 - 1) / 2;
  const int iy = (dy2 >= 0) ? dy2 / 2 : (dy2 - 1) / 2;
  const int fx = dx2 - 2 * ix;  // 0 or 1
  const int fy = dy2 - 2 * iy;
  QC_EXPECT(reference.covers_block16(x0, y0, ix, iy),
            "motion vector exceeds reference padding");
  std::array<Sample, 256> out;
  if (fx == 0 && fy == 0) {
    copy_block16(reference.row(y0 + iy) + x0 + ix, reference.stride(), out);
  } else {
    halfpel_block16(reference.row(y0 + iy) + x0 + ix, reference.stride(),
                    fx, fy, out);
  }
  return out;
}

}  // namespace qosctrl::media

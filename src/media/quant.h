// Uniform mid-tread quantization of DCT coefficients, MPEG-4 style:
// step = 2 * QP with QP in [1, 31].  Reconstruction is level * step.
#pragma once

#include "media/frame.h"

namespace qosctrl::media {

inline constexpr int kMinQp = 1;
inline constexpr int kMaxQp = 31;

/// Quantizes one coefficient with quantization parameter `qp`.
std::int32_t quantize_coeff(std::int32_t c, int qp);

/// Reconstructs a coefficient from its quantized level.
std::int32_t dequantize_coeff(std::int32_t level, int qp);

/// Blockwise helpers.
Coeffs8 quantize_block(const Coeffs8& coeffs, int qp);
Coeffs8 dequantize_block(const Coeffs8& levels, int qp);

/// Number of non-zero levels in a quantized block (drives the entropy
/// coder's work scale).
int count_nonzero(const Coeffs8& levels);

}  // namespace qosctrl::media

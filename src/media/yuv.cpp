#include "media/yuv.h"

#include <algorithm>
#include <cmath>

namespace qosctrl::media {

double psnr_chroma(const YuvFrame& a, const YuvFrame& b, double cap) {
  const double sse = plane_sse(a.cb, b.cb) + plane_sse(a.cr, b.cr);
  const double n =
      2.0 * static_cast<double>(a.cb.width()) * a.cb.height();
  if (sse <= 0.0) return cap;
  return std::min(cap, 10.0 * std::log10(255.0 * 255.0 / (sse / n)));
}

}  // namespace qosctrl::media

// Luma frames and block views.
//
// The encoder substrate works on 8-bit luma frames split into 16x16
// macroblocks of 256 pixels (paper Section 3) which are themselves
// processed as four 8x8 transform blocks.  Chroma is omitted: the
// paper's PSNR is a single per-frame series and luma carries the
// quality signal; this halves nothing in the control path.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qosctrl::media {

/// Pixel residuals / predictions use 16-bit signed samples.
using Sample = std::uint8_t;
using Residual = std::int16_t;

/// An 8x8 residual block in row-major order.
using Block8 = std::array<Residual, 64>;
/// An 8x8 block of transform coefficients.
using Coeffs8 = std::array<std::int32_t, 64>;

inline constexpr int kMacroBlockSize = 16;   ///< 16x16 = 256 pixels
inline constexpr int kTransformSize = 8;     ///< 8x8 DCT blocks

/// A single 8-bit luma frame.
class Frame {
 public:
  Frame() = default;

  /// Dimensions must be positive multiples of the macroblock size so a
  /// frame tiles exactly into macroblocks.
  Frame(int width, int height, Sample fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  int mb_cols() const { return width_ / kMacroBlockSize; }
  int mb_rows() const { return height_ / kMacroBlockSize; }
  int num_macroblocks() const { return mb_cols() * mb_rows(); }

  Sample at(int x, int y) const {
    QC_DCHECK(in_bounds(x, y), "pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  void set(int x, int y, Sample v) {
    QC_DCHECK(in_bounds(x, y), "pixel out of bounds");
    data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = v;
  }

  /// Distance in samples between vertically adjacent pixels.
  int stride() const { return width_; }

  /// Raw pointer to row `y` (column 0); valid for `width()` samples.
  /// The bounds check is hoisted to the call, so kernels iterating a
  /// row pay no per-pixel checks.
  const Sample* row(int y) const {
    QC_DCHECK(y >= 0 && y < height_, "row out of bounds");
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }
  Sample* row(int y) {
    QC_DCHECK(y >= 0 && y < height_, "row out of bounds");
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }

  /// Clamped read: coordinates outside the frame are clamped to the
  /// border (used by motion compensation near edges).
  Sample at_clamped(int x, int y) const;

  bool in_bounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  const std::vector<Sample>& data() const { return data_; }
  std::vector<Sample>& data() { return data_; }

  /// Top-left pixel coordinates of macroblock `mb` in raster order.
  std::pair<int, int> mb_origin(int mb) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Sample> data_;
};

/// Copies the 16x16 macroblock at (x0, y0) into a 256-entry array.
std::array<Sample, 256> read_macroblock(const Frame& frame, int x0, int y0);

/// Writes a 16x16 macroblock (values already clamped to [0,255]).
void write_macroblock(Frame& frame, int x0, int y0,
                      const std::array<Sample, 256>& pixels);

/// Reads the 8x8 sub-block `b` (0..3, raster order) of the macroblock
/// at (x0, y0) as residual samples.
Block8 read_block8(const Frame& frame, int x0, int y0, int b);

// ---------------------------------------------------------------------------
// Metrics (paper: PSNR between input and output frames)

/// Sum of absolute differences between two 16x16 blocks.
std::int64_t sad_256(const std::array<Sample, 256>& a,
                     const std::array<Sample, 256>& b);

/// Integer sum of squared errors over whole frames (equal dimensions
/// required; SIMD-dispatched, exact).  The one kernel call site —
/// frame_sse, psnr, and quality::frame_sse all route through it.
std::int64_t frame_sse_i64(const Frame& a, const Frame& b);

/// Sum of squared errors over whole frames (equal dimensions required).
double frame_sse(const Frame& a, const Frame& b);

/// PSNR in dB from an integer sum of squared errors over `pixels`
/// 8-bit samples; `cap` bounds the value for identical inputs
/// (sse == 0).  The single home of the dB formula — psnr() below and
/// quality::psnr both route through it.
double psnr_from_sse(std::int64_t sse, std::int64_t pixels,
                     double cap = 99.0);

/// Peak signal-to-noise ratio in dB; identical frames yield `cap`
/// (default 99 dB) rather than infinity.
double psnr(const Frame& a, const Frame& b, double cap = 99.0);

}  // namespace qosctrl::media

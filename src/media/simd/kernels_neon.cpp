// NEON kernels (AArch64): `vabal`-based macroblock SAD, single and
// 4-candidate batch — the hot motion-search path the gcc-aarch64-qemu
// CI leg exercises.  Each row pair feeds two widening
// absolute-difference accumulates (vabal_u8 on the low/high halves)
// into a uint16x8 accumulator; four rows fit comfortably (a lane
// accumulates at most 8 * 255 = 2040), and the 4-row horizontal sum
// keeps the early-exit checkpoint bit-identical with the scalar /
// SSE2 / AVX2 kernels.
//
// Half-pel interpolation, the fixed-point DCT, and the distortion
// accumulators still alias the scalar kernels — `vrhadd`-based
// half-pel and a vabal-style SSE accumulator are the remaining
// ROADMAP follow-ups.
#include "media/simd/kernels_impl.h"

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

namespace qosctrl::media::simd {
namespace {

constexpr int kMb = 16;

/// Widening absolute-difference accumulate of one 16-pixel row.
inline uint16x8_t row_abd(uint16x8_t acc, const std::uint8_t* c,
                          const std::uint8_t* r) {
  const uint8x16_t vc = vld1q_u8(c);
  const uint8x16_t vr = vld1q_u8(r);
  acc = vabal_u8(acc, vget_low_u8(vc), vget_low_u8(vr));
  return vabal_u8(acc, vget_high_u8(vc), vget_high_u8(vr));
}

std::int64_t neon_sad_16x16(const std::uint8_t* cur, const std::uint8_t* ref,
                            std::ptrdiff_t ref_stride, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMb; y += 4) {
    uint16x8_t v = vdupq_n_u16(0);
    for (int dy = 0; dy < 4; ++dy) {
      v = row_abd(v, cur + (y + dy) * kMb, ref + (y + dy) * ref_stride);
    }
    acc += vaddlvq_u16(v);
    if (acc >= best) return acc;  // same 4-row checkpoint as scalar
  }
  return acc;
}

void neon_sad_16x16_x4(const std::uint8_t* cur,
                       const std::uint8_t* const ref[4],
                       std::ptrdiff_t ref_stride, std::int64_t best,
                       std::int64_t out[4]) {
  out[0] = out[1] = out[2] = out[3] = 0;
  for (int y = 0; y < kMb; y += 4) {
    uint16x8_t acc0 = vdupq_n_u16(0);
    uint16x8_t acc1 = vdupq_n_u16(0);
    uint16x8_t acc2 = vdupq_n_u16(0);
    uint16x8_t acc3 = vdupq_n_u16(0);
    for (int dy = 0; dy < 4; ++dy) {
      const std::uint8_t* c = cur + (y + dy) * kMb;
      const std::ptrdiff_t off = (y + dy) * ref_stride;
      acc0 = row_abd(acc0, c, ref[0] + off);
      acc1 = row_abd(acc1, c, ref[1] + off);
      acc2 = row_abd(acc2, c, ref[2] + off);
      acc3 = row_abd(acc3, c, ref[3] + off);
    }
    out[0] += vaddlvq_u16(acc0);
    out[1] += vaddlvq_u16(acc1);
    out[2] += vaddlvq_u16(acc2);
    out[3] += vaddlvq_u16(acc3);
    // Same all-candidates-pruned 4-row checkpoint as scalar.
    if (out[0] >= best && out[1] >= best && out[2] >= best &&
        out[3] >= best) {
      return;
    }
  }
}

const KernelTable kNeonTable = {
    "neon",           Backend::kNeon,       neon_sad_16x16,
    neon_sad_16x16_x4, scalar_halfpel_16x16, scalar_fdct8, scalar_idct8,
    scalar_sum_sq_diff, scalar_ssim_stats_8x8,
};

}  // namespace

const KernelTable* neon_kernel_table() { return &kNeonTable; }

}  // namespace qosctrl::media::simd

#else  // !AArch64

namespace qosctrl::media::simd {
const KernelTable* neon_kernel_table() { return nullptr; }
}  // namespace qosctrl::media::simd

#endif

// Scalar reference kernels — the semantics every SIMD backend must
// reproduce bit-for-bit.  The SAD early-exit checkpoint is every 4
// rows (not every row) so the partial sums a pruned call returns are
// identical across scalar, SSE2, and AVX2: 4 rows is the natural
// accumulation block of the vector kernels, and coarsening the scalar
// check to match costs nothing measurable while making the contract
// testable with plain EXPECT_EQ.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "media/simd/kernels_impl.h"

namespace qosctrl::media::simd {
namespace {

constexpr int kMb = 16;  ///< macroblock edge, kept local (see kernels_impl.h)
constexpr int kN = 8;    ///< transform size

inline std::int64_t descale(std::int64_t x, int n) {
  return (x + (INT64_C(1) << (n - 1))) >> n;
}

/// One forward 8-point pass over `in` (stride 1) writing to `out`
/// (stride 1).  Pass 2 descales the add-only (0, 4) and
/// constant-multiplied outputs down to the orthonormal range; pass 1
/// *up*-scales the add-only outputs by kDctPass1Bits instead,
/// matching the libjpeg bookkeeping.
template <bool kFirstPass>
inline void fdct_pass(const std::int64_t* in, std::int64_t* out) {
  const std::int64_t tmp0 = in[0] + in[7];
  const std::int64_t tmp7 = in[0] - in[7];
  const std::int64_t tmp1 = in[1] + in[6];
  const std::int64_t tmp6 = in[1] - in[6];
  const std::int64_t tmp2 = in[2] + in[5];
  const std::int64_t tmp5 = in[2] - in[5];
  const std::int64_t tmp3 = in[3] + in[4];
  const std::int64_t tmp4 = in[3] - in[4];

  // Even part.
  const std::int64_t tmp10 = tmp0 + tmp3;
  const std::int64_t tmp13 = tmp0 - tmp3;
  const std::int64_t tmp11 = tmp1 + tmp2;
  const std::int64_t tmp12 = tmp1 - tmp2;

  const int simple_down = kFirstPass ? 0 : kDctPass1Bits + 3;
  const int const_down = kFirstPass
                             ? kDctConstBits - kDctPass1Bits
                             : kDctConstBits + kDctPass1Bits + 3;

  if (kFirstPass) {
    out[0] = (tmp10 + tmp11) << kDctPass1Bits;
    out[4] = (tmp10 - tmp11) << kDctPass1Bits;
  } else {
    out[0] = descale(tmp10 + tmp11, simple_down);
    out[4] = descale(tmp10 - tmp11, simple_down);
  }

  const std::int64_t z1 = (tmp12 + tmp13) * kFix_0_541196100;
  out[2] = descale(z1 + tmp13 * kFix_0_765366865, const_down);
  out[6] = descale(z1 - tmp12 * kFix_1_847759065, const_down);

  // Odd part.
  std::int64_t z1o = tmp4 + tmp7;
  std::int64_t z2 = tmp5 + tmp6;
  std::int64_t z3 = tmp4 + tmp6;
  std::int64_t z4 = tmp5 + tmp7;
  const std::int64_t z5 = (z3 + z4) * kFix_1_175875602;

  const std::int64_t t4 = tmp4 * kFix_0_298631336;
  const std::int64_t t5 = tmp5 * kFix_2_053119869;
  const std::int64_t t6 = tmp6 * kFix_3_072711026;
  const std::int64_t t7 = tmp7 * kFix_1_501321110;
  z1o = -z1o * kFix_0_899976223;
  z2 = -z2 * kFix_2_562915447;
  z3 = -z3 * kFix_1_961570560 + z5;
  z4 = -z4 * kFix_0_390180644 + z5;

  out[7] = descale(t4 + z1o + z3, const_down);
  out[5] = descale(t5 + z2 + z4, const_down);
  out[3] = descale(t6 + z2 + z3, const_down);
  out[1] = descale(t7 + z1o + z4, const_down);
}

/// One inverse 8-point pass; pass 1 descales by
/// kDctConstBits - kDctPass1Bits, pass 2 by
/// kDctConstBits + kDctPass1Bits + 3.
template <bool kFirstPass>
inline void idct_pass(const std::int64_t* in, std::int64_t* out) {
  // Even part.
  std::int64_t z2 = in[2];
  std::int64_t z3 = in[6];
  const std::int64_t z1 = (z2 + z3) * kFix_0_541196100;
  const std::int64_t tmp2 = z1 - z3 * kFix_1_847759065;
  const std::int64_t tmp3 = z1 + z2 * kFix_0_765366865;

  z2 = in[0];
  z3 = in[4];
  const std::int64_t tmp0 = (z2 + z3) << kDctConstBits;
  const std::int64_t tmp1 = (z2 - z3) << kDctConstBits;

  const std::int64_t tmp10 = tmp0 + tmp3;
  const std::int64_t tmp13 = tmp0 - tmp3;
  const std::int64_t tmp11 = tmp1 + tmp2;
  const std::int64_t tmp12 = tmp1 - tmp2;

  // Odd part.
  std::int64_t t0 = in[7];
  std::int64_t t1 = in[5];
  std::int64_t t2 = in[3];
  std::int64_t t3 = in[1];
  std::int64_t z1o = t0 + t3;
  std::int64_t z2o = t1 + t2;
  std::int64_t z3o = t0 + t2;
  std::int64_t z4o = t1 + t3;
  const std::int64_t z5 = (z3o + z4o) * kFix_1_175875602;

  t0 *= kFix_0_298631336;
  t1 *= kFix_2_053119869;
  t2 *= kFix_3_072711026;
  t3 *= kFix_1_501321110;
  z1o = -z1o * kFix_0_899976223;
  z2o = -z2o * kFix_2_562915447;
  z3o = -z3o * kFix_1_961570560 + z5;
  z4o = -z4o * kFix_0_390180644 + z5;

  t0 += z1o + z3o;
  t1 += z2o + z4o;
  t2 += z2o + z3o;
  t3 += z1o + z4o;

  const int down = kFirstPass ? kDctConstBits - kDctPass1Bits
                              : kDctConstBits + kDctPass1Bits + 3;
  out[0] = descale(tmp10 + t3, down);
  out[7] = descale(tmp10 - t3, down);
  out[1] = descale(tmp11 + t2, down);
  out[6] = descale(tmp11 - t2, down);
  out[2] = descale(tmp12 + t1, down);
  out[5] = descale(tmp12 - t1, down);
  out[3] = descale(tmp13 + t0, down);
  out[4] = descale(tmp13 - t0, down);
}

}  // namespace

std::int64_t scalar_sad_16x16(const std::uint8_t* cur,
                              const std::uint8_t* ref,
                              std::ptrdiff_t ref_stride, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMb; y += 4) {
    for (int dy = 0; dy < 4; ++dy) {
      const std::uint8_t* c = cur + (y + dy) * kMb;
      const std::uint8_t* r = ref + (y + dy) * ref_stride;
      int row = 0;
      for (int x = 0; x < kMb; ++x) {
        row += std::abs(static_cast<int>(c[x]) - static_cast<int>(r[x]));
      }
      acc += row;
    }
    if (acc >= best) return acc;  // cannot improve; partial sum suffices
  }
  return acc;
}

void scalar_sad_16x16_x4(const std::uint8_t* cur,
                         const std::uint8_t* const ref[4],
                         std::ptrdiff_t ref_stride, std::int64_t best,
                         std::int64_t out[4]) {
  out[0] = out[1] = out[2] = out[3] = 0;
  for (int y = 0; y < kMb; y += 4) {
    for (int k = 0; k < 4; ++k) {
      std::int64_t acc = 0;
      for (int dy = 0; dy < 4; ++dy) {
        const std::uint8_t* c = cur + (y + dy) * kMb;
        const std::uint8_t* r = ref[k] + (y + dy) * ref_stride;
        int row = 0;
        for (int x = 0; x < kMb; ++x) {
          row += std::abs(static_cast<int>(c[x]) - static_cast<int>(r[x]));
        }
        acc += row;
      }
      out[k] += acc;
    }
    // Stop only when no candidate can win any more (same 4-row
    // checkpoint as the vector backends, so the returned partials are
    // identical everywhere).
    if (out[0] >= best && out[1] >= best && out[2] >= best &&
        out[3] >= best) {
      return;
    }
  }
}

void scalar_halfpel_16x16(const std::uint8_t* src, std::ptrdiff_t stride,
                          int fx, int fy, std::uint8_t* dst) {
  for (int y = 0; y < kMb; ++y) {
    const std::uint8_t* p = src;
    const std::uint8_t* q = src + stride;
    if (fx == 1 && fy == 0) {
      for (int x = 0; x < kMb; ++x) {
        dst[x] = static_cast<std::uint8_t>((p[x] + p[x + 1] + 1) / 2);
      }
    } else if (fx == 0) {  // fy == 1
      for (int x = 0; x < kMb; ++x) {
        dst[x] = static_cast<std::uint8_t>((p[x] + q[x] + 1) / 2);
      }
    } else {
      for (int x = 0; x < kMb; ++x) {
        dst[x] = static_cast<std::uint8_t>(
            (p[x] + p[x + 1] + q[x] + q[x + 1] + 2) / 4);
      }
    }
    src += stride;
    dst += kMb;
  }
}

std::int64_t scalar_sum_sq_diff(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    acc += d * d;
  }
  return acc;
}

void scalar_ssim_stats_8x8(const std::uint8_t* a, std::ptrdiff_t a_stride,
                           const std::uint8_t* b, std::ptrdiff_t b_stride,
                           std::int64_t out[5]) {
  std::int64_t sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (int y = 0; y < kN; ++y) {
    const std::uint8_t* pa = a + y * a_stride;
    const std::uint8_t* pb = b + y * b_stride;
    for (int x = 0; x < kN; ++x) {
      const int va = pa[x];
      const int vb = pb[x];
      sa += va;
      sb += vb;
      saa += va * va;
      sbb += vb * vb;
      sab += va * vb;
    }
  }
  out[0] = sa;
  out[1] = sb;
  out[2] = saa;
  out[3] = sbb;
  out[4] = sab;
}

void scalar_fdct8(const std::int16_t* in, std::int32_t* out) {
  std::int64_t row_in[kN];
  std::int64_t ws[kN * kN];
  // Rows.
  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) row_in[x] = in[y * kN + x];
    fdct_pass<true>(row_in, ws + y * kN);
  }
  // Columns.
  std::int64_t col_in[kN];
  std::int64_t col_out[kN];
  for (int u = 0; u < kN; ++u) {
    for (int y = 0; y < kN; ++y) col_in[y] = ws[y * kN + u];
    fdct_pass<false>(col_in, col_out);
    for (int v = 0; v < kN; ++v) {
      out[v * kN + u] = static_cast<std::int32_t>(col_out[v]);
    }
  }
}

void scalar_idct8(const std::int32_t* in, std::int16_t* out) {
  std::int64_t col_in[kN];
  std::int64_t col_out[kN];
  std::int64_t ws[kN * kN];
  // Columns (inverse).
  for (int u = 0; u < kN; ++u) {
    for (int v = 0; v < kN; ++v) col_in[v] = in[v * kN + u];
    idct_pass<true>(col_in, col_out);
    for (int y = 0; y < kN; ++y) ws[y * kN + u] = col_out[y];
  }
  // Rows (inverse).
  std::int64_t row_out[kN];
  for (int y = 0; y < kN; ++y) {
    idct_pass<false>(ws + y * kN, row_out);
    for (int x = 0; x < kN; ++x) {
      out[y * kN + x] = static_cast<std::int16_t>(std::max<std::int64_t>(
          -32768, std::min<std::int64_t>(32767, row_out[x])));
    }
  }
}

}  // namespace qosctrl::media::simd

// Runtime-dispatched SIMD media kernels.
//
// The encoder's hot pixel loops — macroblock SAD, half-pel bilinear
// interpolation, the fixed-point LLM DCT butterflies, and the
// PSNR / SSIM distortion accumulators — are reached through a table
// of function pointers selected once at startup from CPUID: SSE2 is
// the x86-64 baseline, AVX2 is used when the CPU reports it, and
// AArch64 builds get `vabal` NEON SAD kernels (the remaining NEON
// slots alias the scalar reference kernels).  Every entry is pinned
// bit-exact against the scalar kernel over the encoder's input domain
// (tests/media/simd_kernel_equivalence_test.cpp), so the backend in
// use is unobservable except through speed.
//
// Selection order (first match wins):
//  1. -DQOSCTRL_FORCE_SCALAR=ON at configure time compiles the
//     dispatcher to answer scalar unconditionally;
//  2. the QOSCTRL_FORCE_SCALAR environment variable (any value other
//     than "", "0", "off", "false") forces scalar at startup;
//  3. the QOSCTRL_SIMD environment variable ("scalar", "sse2",
//     "avx2") requests a specific backend, honored when the CPU
//     supports it;
//  4. otherwise the best CPUID-supported backend is used.
//
// Tests switch backends in-process with set_backend_for_testing so one
// binary can compare scalar, SSE2, and AVX2 results directly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qosctrl::media::simd {

enum class Backend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,  ///< vabal SAD kernels; other slots alias scalar
};

/// The kernel function-pointer table.  All pointers are non-null in
/// every table (unaccelerated entries alias the scalar kernel).
struct KernelTable {
  const char* name;  ///< human-readable backend name
  Backend backend;

  /// SAD between a contiguous 16x16 block `cur` (row stride 16) and
  /// the 16x16 block at `ref` (row stride `ref_stride`).  Early-exit
  /// contract shared by all backends: the exact SAD is returned when
  /// it is < `best`; otherwise a partial sum (checked after every 4
  /// rows, identical across backends) >= `best` and <= the exact SAD
  /// may be returned.
  std::int64_t (*sad_16x16)(const std::uint8_t* cur, const std::uint8_t* ref,
                            std::ptrdiff_t ref_stride, std::int64_t best);

  /// Batched SAD of `cur` against four candidate blocks ref[0..3]
  /// (shared row stride).  Early-exit contract mirroring sad_16x16:
  /// out[k] is exact when < `best`; after each 4-row block, if every
  /// partial sum has reached `best`, the call may stop and return the
  /// partials (identical across backends) — no candidate can win, so
  /// callers comparing against `best` observe no difference.
  void (*sad_16x16_x4)(const std::uint8_t* cur,
                       const std::uint8_t* const ref[4],
                       std::ptrdiff_t ref_stride, std::int64_t best,
                       std::int64_t out[4]);

  /// Half-pel bilinear interpolation of the 16x16 block anchored at
  /// `src`: dst[y][x] derives from src pixels at (x + fx, y + fy)
  /// half offsets, (fx, fy) in {0,1}^2 \ {(0,0)}, with the standard
  /// rounding ((a+b+1)/2 axis-aligned, (a+b+c+d+2)/4 diagonal).
  /// Reads up to 17x17 source pixels.
  void (*halfpel_16x16)(const std::uint8_t* src, std::ptrdiff_t stride,
                        int fx, int fy, std::uint8_t* dst);

  /// Fixed-point LLM forward / inverse 8x8 DCT on row-major blocks.
  /// Bit-exact with the scalar kernel for |in[i]| <= 1023 (forward)
  /// and |in[i]| <= 65536 (inverse) — comfortably beyond the
  /// encoder's 9-bit residuals and their transform coefficients.
  void (*fdct8)(const std::int16_t* in, std::int32_t* out);
  void (*idct8)(const std::int32_t* in, std::int16_t* out);

  /// Sum of squared differences between two contiguous sample spans of
  /// `n` pixels, `n` a positive multiple of 16 — the PSNR accumulator
  /// (quality::frame_sse feeds whole luma planes through one call).
  /// Integer accumulation: the result is exact, so every backend
  /// returns the identical sum.
  std::int64_t (*sum_sq_diff)(const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t n);

  /// Raw moments of one co-located 8x8 block pair — the per-window
  /// input of the fixed-point SSIM (src/quality/distortion.cpp):
  /// out = {sum a, sum b, sum a*a, sum b*b, sum a*b}.  All integer, so
  /// the downstream SSIM arithmetic is backend-independent by
  /// construction.
  void (*ssim_stats_8x8)(const std::uint8_t* a, std::ptrdiff_t a_stride,
                         const std::uint8_t* b, std::ptrdiff_t b_stride,
                         std::int64_t out[5]);
};

/// The table selected at startup (rules above).  Thread-safe; the
/// selection is made once on first use.
const KernelTable& active_kernels();
Backend active_backend();

/// True when `b`'s kernels can run on this machine (kScalar always;
/// kSse2/kAvx2 per CPUID and compiler support; kNeon on AArch64).
bool backend_supported(Backend b);

/// The best backend this machine supports, ignoring all overrides.
Backend detected_backend();

/// The table for a specific backend; requires backend_supported(b).
const KernelTable& kernels_for(Backend b);

/// Forces the active table (for tests and benchmarks); requires
/// backend_supported(b).  Returns the previously active backend.
/// Not thread-safe against concurrent kernel use — call only from
/// single-threaded test setup.
Backend set_backend_for_testing(Backend b);

// ---------------------------------------------------------------------------
// Pure selection logic, exposed for unit tests.

const char* backend_name(Backend b);

/// Parses "scalar" / "sse2" / "avx2" / "neon" (case-insensitive);
/// anything else (including nullptr) yields `fallback`.
Backend parse_backend(const char* s, Backend fallback);

/// True for any value other than nullptr, "", "0", "off", "false"
/// (case-insensitive) — the QOSCTRL_FORCE_SCALAR convention.
bool env_flag_set(const char* value);

/// Applies the override chain to the CPUID-detected backend:
/// compiled force-scalar, then the QOSCTRL_FORCE_SCALAR env value,
/// then the QOSCTRL_SIMD env request (honored only when supported —
/// the caller's `supported` predicate decides).
Backend resolve_backend(Backend detected, bool compiled_force_scalar,
                        const char* force_scalar_env, const char* simd_env,
                        bool (*supported)(Backend));

}  // namespace qosctrl::media::simd

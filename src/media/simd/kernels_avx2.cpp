// AVX2 kernels: `vpsadbw` macroblock SAD (single and paired-candidate
// batch), two-row `vpavgb` half-pel interpolation, and an exact
// vectorized fixed-point LLM DCT.
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt);
// everything in it must stay unreachable unless the dispatcher's
// CPUID check passed.  It is deliberately self-contained — no library
// headers with inline functions are included, so no comdat symbol
// compiled with AVX2 codegen can be picked by the linker over a
// baseline copy from another TU.
//
// DCT exactness: the scalar kernel runs each 8-point pass in int64.
// Here each pass runs 8 lanes wide (lane = row for the row pass,
// lane = column for the column pass, with 8x8 32-bit transposes in
// between).  Additions stay in 32-bit lanes while magnitudes allow it
// (forward pass 1 entirely); every multiply by a fixed-point constant
// is widened to exact 64-bit products via vpmuldq on even/odd lane
// halves, summed in 64-bit, and descaled with the same rounding shift
// as the scalar code — bit-exact by construction over the documented
// input domain (|residual| <= 1023 forward, |coefficient| <= 65536
// inverse; see kernels.h).
#include "media/simd/kernels_impl.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace qosctrl::media::simd {
namespace {

constexpr int kMb = 16;

inline __m256i load2rows(const std::uint8_t* lo, const std::uint8_t* hi) {
  return _mm256_inserti128_si256(
      _mm256_castsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo))),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi)), 1);
}

inline std::int64_t hsum_sad128(__m128i acc) {
  return _mm_cvtsi128_si64(acc) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc));
}

inline std::int64_t hsum_sad256(__m256i acc) {
  return hsum_sad128(_mm_add_epi64(_mm256_castsi256_si128(acc),
                                   _mm256_extracti128_si256(acc, 1)));
}

std::int64_t avx2_sad_16x16(const std::uint8_t* cur, const std::uint8_t* ref,
                            std::ptrdiff_t ref_stride, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMb; y += 4) {
    // The cached current block has stride 16, so two of its rows are
    // one contiguous 32-byte load.
    const __m256i c01 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cur + y * kMb));
    const __m256i c23 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cur + (y + 2) * kMb));
    const __m256i r01 =
        load2rows(ref + y * ref_stride, ref + (y + 1) * ref_stride);
    const __m256i r23 =
        load2rows(ref + (y + 2) * ref_stride, ref + (y + 3) * ref_stride);
    const __m256i v = _mm256_add_epi64(_mm256_sad_epu8(c01, r01),
                                       _mm256_sad_epu8(c23, r23));
    acc += hsum_sad256(v);
    if (acc >= best) return acc;  // same 4-row checkpoint as scalar
  }
  return acc;
}

void avx2_sad_16x16_x4(const std::uint8_t* cur,
                       const std::uint8_t* const ref[4],
                       std::ptrdiff_t ref_stride, std::int64_t best,
                       std::int64_t out[4]) {
  out[0] = out[1] = out[2] = out[3] = 0;
  for (int y = 0; y < kMb; y += 4) {
    __m256i acc01 = _mm256_setzero_si256();
    __m256i acc23 = _mm256_setzero_si256();
    for (int dy = 0; dy < 4; ++dy) {
      const __m128i c = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cur + (y + dy) * kMb));
      const __m256i cc =
          _mm256_inserti128_si256(_mm256_castsi128_si256(c), c, 1);
      const std::ptrdiff_t off = (y + dy) * ref_stride;
      acc01 = _mm256_add_epi64(
          acc01, _mm256_sad_epu8(cc, load2rows(ref[0] + off, ref[1] + off)));
      acc23 = _mm256_add_epi64(
          acc23, _mm256_sad_epu8(cc, load2rows(ref[2] + off, ref[3] + off)));
    }
    out[0] += hsum_sad128(_mm256_castsi256_si128(acc01));
    out[1] += hsum_sad128(_mm256_extracti128_si256(acc01, 1));
    out[2] += hsum_sad128(_mm256_castsi256_si128(acc23));
    out[3] += hsum_sad128(_mm256_extracti128_si256(acc23, 1));
    // Same all-candidates-pruned 4-row checkpoint as scalar.
    if (out[0] >= best && out[1] >= best && out[2] >= best &&
        out[3] >= best) {
      return;
    }
  }
}

void avx2_halfpel_16x16(const std::uint8_t* src, std::ptrdiff_t stride,
                        int fx, int fy, std::uint8_t* dst) {
  if (fx == 1 && fy == 0) {
    for (int y = 0; y < kMb; y += 2) {
      const std::uint8_t* p = src + y * stride;
      // vpavgb computes (a + b + 1) >> 1, the scalar rounding exactly.
      const __m256i r = _mm256_avg_epu8(load2rows(p, p + stride),
                                        load2rows(p + 1, p + stride + 1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + y * kMb), r);
    }
    return;
  }
  if (fx == 0) {  // fy == 1
    for (int y = 0; y < kMb; y += 2) {
      const std::uint8_t* p = src + y * stride;
      const __m256i r =
          _mm256_avg_epu8(load2rows(p, p + stride),
                          load2rows(p + stride, p + 2 * stride));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + y * kMb), r);
    }
    return;
  }
  // Diagonal (a + b + c + d + 2) >> 2: u16 lanes are exact (sum of
  // four u8 plus 2 is at most 1022).
  const __m256i two = _mm256_set1_epi16(2);
  auto diag_row = [&](const std::uint8_t* p) {
    const std::uint8_t* q = p + stride;
    const __m256i a = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    const __m256i b = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1)));
    const __m256i c = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)));
    const __m256i d = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 1)));
    return _mm256_srli_epi16(
        _mm256_add_epi16(_mm256_add_epi16(a, b),
                         _mm256_add_epi16(_mm256_add_epi16(c, d), two)),
        2);
  };
  for (int y = 0; y < kMb; y += 2) {
    const __m256i r0 = diag_row(src + y * stride);
    const __m256i r1 = diag_row(src + (y + 1) * stride);
    // packus interleaves 128-bit lanes; the permute restores row order.
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packus_epi16(r0, r1), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + y * kMb), packed);
  }
}

// ---------------------------------------------------------------------------
// DCT helpers.

/// 8x8 transpose of 32-bit lanes across eight __m256i registers.
inline void transpose8x8_epi32(__m256i r[8]) {
  const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/// descale(x, n) on 32-bit lanes — exact while |x| + 2^(n-1) < 2^31.
template <int N>
inline __m256i descale32(__m256i x) {
  return _mm256_srai_epi32(
      _mm256_add_epi32(x, _mm256_set1_epi32(1 << (N - 1))), N);
}

/// Eight signed 64-bit values held as the widened even / odd 32-bit
/// lanes of a logical 8-lane vector.  vpmuldq only multiplies the low
/// 32 bits of each 64-bit element, so products stay exact while the
/// 32-bit operands do.
struct V64 {
  __m256i e, o;
};

inline V64 v64_add(V64 a, V64 b) {
  return {_mm256_add_epi64(a.e, b.e), _mm256_add_epi64(a.o, b.o)};
}
inline V64 v64_sub(V64 a, V64 b) {
  return {_mm256_sub_epi64(a.e, b.e), _mm256_sub_epi64(a.o, b.o)};
}

/// Exact 64-bit products lane-by-lane of an 8x32-bit vector with a
/// constant |c| < 2^31.
inline V64 wmul(__m256i v, std::int64_t c) {
  const __m256i vc = _mm256_set1_epi64x(c);
  return {_mm256_mul_epi32(v, vc),
          _mm256_mul_epi32(_mm256_srli_epi64(v, 32), vc)};
}

/// Rounded right-shift of 64-bit lanes back into one 8x32-bit vector;
/// exact when every descaled value fits in 32 bits (the low 32 bits
/// of a logical and an arithmetic shift agree for N <= 27).
template <int N>
inline __m256i descale64(V64 x) {
  const __m256i round = _mm256_set1_epi64x(INT64_C(1) << (N - 1));
  const __m256i e = _mm256_srli_epi64(_mm256_add_epi64(x.e, round), N);
  const __m256i o = _mm256_srli_epi64(_mm256_add_epi64(x.o, round), N);
  return _mm256_blend_epi32(e, _mm256_slli_epi64(o, 32), 0xAA);
}

/// Forward pass 1: all magnitudes (inputs <= 1023 in absolute value)
/// fit 32-bit lanes, products included, so vpmulld is exact.
inline void fdct_pass1(__m256i x[8]) {
  const __m256i tmp0 = _mm256_add_epi32(x[0], x[7]);
  const __m256i tmp7 = _mm256_sub_epi32(x[0], x[7]);
  const __m256i tmp1 = _mm256_add_epi32(x[1], x[6]);
  const __m256i tmp6 = _mm256_sub_epi32(x[1], x[6]);
  const __m256i tmp2 = _mm256_add_epi32(x[2], x[5]);
  const __m256i tmp5 = _mm256_sub_epi32(x[2], x[5]);
  const __m256i tmp3 = _mm256_add_epi32(x[3], x[4]);
  const __m256i tmp4 = _mm256_sub_epi32(x[3], x[4]);

  const __m256i tmp10 = _mm256_add_epi32(tmp0, tmp3);
  const __m256i tmp13 = _mm256_sub_epi32(tmp0, tmp3);
  const __m256i tmp11 = _mm256_add_epi32(tmp1, tmp2);
  const __m256i tmp12 = _mm256_sub_epi32(tmp1, tmp2);

  x[0] = _mm256_slli_epi32(_mm256_add_epi32(tmp10, tmp11), kDctPass1Bits);
  x[4] = _mm256_slli_epi32(_mm256_sub_epi32(tmp10, tmp11), kDctPass1Bits);

  const auto mul32 = [](__m256i v, std::int64_t c) {
    return _mm256_mullo_epi32(v, _mm256_set1_epi32(static_cast<int>(c)));
  };
  constexpr int kDown1 = kDctConstBits - kDctPass1Bits;
  const __m256i z1 = mul32(_mm256_add_epi32(tmp12, tmp13),
                           kFix_0_541196100);
  x[2] = descale32<kDown1>(
      _mm256_add_epi32(z1, mul32(tmp13, kFix_0_765366865)));
  x[6] = descale32<kDown1>(
      _mm256_sub_epi32(z1, mul32(tmp12, kFix_1_847759065)));

  const __m256i z1o = _mm256_add_epi32(tmp4, tmp7);
  const __m256i z2 = _mm256_add_epi32(tmp5, tmp6);
  const __m256i z3 = _mm256_add_epi32(tmp4, tmp6);
  const __m256i z4 = _mm256_add_epi32(tmp5, tmp7);
  const __m256i z5 = mul32(_mm256_add_epi32(z3, z4), kFix_1_175875602);

  const __m256i t4 = mul32(tmp4, kFix_0_298631336);
  const __m256i t5 = mul32(tmp5, kFix_2_053119869);
  const __m256i t6 = mul32(tmp6, kFix_3_072711026);
  const __m256i t7 = mul32(tmp7, kFix_1_501321110);
  const __m256i m1 = mul32(z1o, -kFix_0_899976223);
  const __m256i m2 = mul32(z2, -kFix_2_562915447);
  const __m256i m3 = _mm256_add_epi32(mul32(z3, -kFix_1_961570560), z5);
  const __m256i m4 = _mm256_add_epi32(mul32(z4, -kFix_0_390180644), z5);

  x[7] = descale32<kDown1>(_mm256_add_epi32(_mm256_add_epi32(t4, m1), m3));
  x[5] = descale32<kDown1>(_mm256_add_epi32(_mm256_add_epi32(t5, m2), m4));
  x[3] = descale32<kDown1>(_mm256_add_epi32(_mm256_add_epi32(t6, m2), m3));
  x[1] = descale32<kDown1>(_mm256_add_epi32(_mm256_add_epi32(t7, m1), m4));
}

/// Forward pass 2: sums of fixed-point products need 64 bits.
inline void fdct_pass2(__m256i x[8]) {
  const __m256i tmp0 = _mm256_add_epi32(x[0], x[7]);
  const __m256i tmp7 = _mm256_sub_epi32(x[0], x[7]);
  const __m256i tmp1 = _mm256_add_epi32(x[1], x[6]);
  const __m256i tmp6 = _mm256_sub_epi32(x[1], x[6]);
  const __m256i tmp2 = _mm256_add_epi32(x[2], x[5]);
  const __m256i tmp5 = _mm256_sub_epi32(x[2], x[5]);
  const __m256i tmp3 = _mm256_add_epi32(x[3], x[4]);
  const __m256i tmp4 = _mm256_sub_epi32(x[3], x[4]);

  const __m256i tmp10 = _mm256_add_epi32(tmp0, tmp3);
  const __m256i tmp13 = _mm256_sub_epi32(tmp0, tmp3);
  const __m256i tmp11 = _mm256_add_epi32(tmp1, tmp2);
  const __m256i tmp12 = _mm256_sub_epi32(tmp1, tmp2);

  constexpr int kSimpleDown = kDctPass1Bits + 3;
  constexpr int kConstDown = kDctConstBits + kDctPass1Bits + 3;
  x[0] = descale32<kSimpleDown>(_mm256_add_epi32(tmp10, tmp11));
  x[4] = descale32<kSimpleDown>(_mm256_sub_epi32(tmp10, tmp11));

  const V64 z1 = wmul(_mm256_add_epi32(tmp12, tmp13), kFix_0_541196100);
  x[2] = descale64<kConstDown>(
      v64_add(z1, wmul(tmp13, kFix_0_765366865)));
  x[6] = descale64<kConstDown>(
      v64_add(z1, wmul(tmp12, -kFix_1_847759065)));

  const __m256i z1o = _mm256_add_epi32(tmp4, tmp7);
  const __m256i z2 = _mm256_add_epi32(tmp5, tmp6);
  const __m256i z3 = _mm256_add_epi32(tmp4, tmp6);
  const __m256i z4 = _mm256_add_epi32(tmp5, tmp7);
  const V64 z5 = wmul(_mm256_add_epi32(z3, z4), kFix_1_175875602);

  const V64 t4 = wmul(tmp4, kFix_0_298631336);
  const V64 t5 = wmul(tmp5, kFix_2_053119869);
  const V64 t6 = wmul(tmp6, kFix_3_072711026);
  const V64 t7 = wmul(tmp7, kFix_1_501321110);
  const V64 m1 = wmul(z1o, -kFix_0_899976223);
  const V64 m2 = wmul(z2, -kFix_2_562915447);
  const V64 m3 = v64_add(wmul(z3, -kFix_1_961570560), z5);
  const V64 m4 = v64_add(wmul(z4, -kFix_0_390180644), z5);

  x[7] = descale64<kConstDown>(v64_add(v64_add(t4, m1), m3));
  x[5] = descale64<kConstDown>(v64_add(v64_add(t5, m2), m4));
  x[3] = descale64<kConstDown>(v64_add(v64_add(t6, m2), m3));
  x[1] = descale64<kConstDown>(v64_add(v64_add(t7, m1), m4));
}

/// One inverse pass; both passes share the structure, only the
/// descale amount differs.
template <int kDown>
inline void idct_pass(__m256i x[8]) {
  const V64 z1 = wmul(_mm256_add_epi32(x[2], x[6]), kFix_0_541196100);
  const V64 tmp2 = v64_add(z1, wmul(x[6], -kFix_1_847759065));
  const V64 tmp3 = v64_add(z1, wmul(x[2], kFix_0_765366865));

  const V64 tmp0 =
      wmul(_mm256_add_epi32(x[0], x[4]), INT64_C(1) << kDctConstBits);
  const V64 tmp1 =
      wmul(_mm256_sub_epi32(x[0], x[4]), INT64_C(1) << kDctConstBits);

  const V64 tmp10 = v64_add(tmp0, tmp3);
  const V64 tmp13 = v64_sub(tmp0, tmp3);
  const V64 tmp11 = v64_add(tmp1, tmp2);
  const V64 tmp12 = v64_sub(tmp1, tmp2);

  const __m256i z1o = _mm256_add_epi32(x[7], x[1]);
  const __m256i z2o = _mm256_add_epi32(x[5], x[3]);
  const __m256i z3o = _mm256_add_epi32(x[7], x[3]);
  const __m256i z4o = _mm256_add_epi32(x[5], x[1]);
  const V64 z5 = wmul(_mm256_add_epi32(z3o, z4o), kFix_1_175875602);

  const V64 m1 = wmul(z1o, -kFix_0_899976223);
  const V64 m2 = wmul(z2o, -kFix_2_562915447);
  const V64 m3 = v64_add(wmul(z3o, -kFix_1_961570560), z5);
  const V64 m4 = v64_add(wmul(z4o, -kFix_0_390180644), z5);

  const V64 t0 = v64_add(wmul(x[7], kFix_0_298631336), v64_add(m1, m3));
  const V64 t1 = v64_add(wmul(x[5], kFix_2_053119869), v64_add(m2, m4));
  const V64 t2 = v64_add(wmul(x[3], kFix_3_072711026), v64_add(m2, m3));
  const V64 t3 = v64_add(wmul(x[1], kFix_1_501321110), v64_add(m1, m4));

  x[0] = descale64<kDown>(v64_add(tmp10, t3));
  x[7] = descale64<kDown>(v64_sub(tmp10, t3));
  x[1] = descale64<kDown>(v64_add(tmp11, t2));
  x[6] = descale64<kDown>(v64_sub(tmp11, t2));
  x[2] = descale64<kDown>(v64_add(tmp12, t1));
  x[5] = descale64<kDown>(v64_sub(tmp12, t1));
  x[3] = descale64<kDown>(v64_add(tmp13, t0));
  x[4] = descale64<kDown>(v64_sub(tmp13, t0));
}

void avx2_fdct8(const std::int16_t* in, std::int32_t* out) {
  __m256i x[8];
  for (int y = 0; y < 8; ++y) {
    x[y] = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + y * 8)));
  }
  transpose8x8_epi32(x);  // lane = row for the row pass
  fdct_pass1(x);
  transpose8x8_epi32(x);  // lane = column for the column pass
  fdct_pass2(x);
  for (int v = 0; v < 8; ++v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + v * 8), x[v]);
  }
}

void avx2_idct8(const std::int32_t* in, std::int16_t* out) {
  __m256i x[8];
  for (int v = 0; v < 8; ++v) {
    x[v] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + v * 8));
  }
  idct_pass<kDctConstBits - kDctPass1Bits>(x);  // lane = column
  transpose8x8_epi32(x);
  idct_pass<kDctConstBits + kDctPass1Bits + 3>(x);  // lane = row
  transpose8x8_epi32(x);
  // packs_epi32 saturates to int16 — the scalar clamp exactly; the
  // permute undoes its 128-bit lane interleave.
  for (int y = 0; y < 8; y += 2) {
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packs_epi32(x[y], x[y + 1]), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + y * 8), packed);
  }
}

// ---------------------------------------------------------------------------
// Distortion kernels (PSNR / SSIM accumulators).

/// Widens the eight non-negative 32-bit vpmaddwd partials into the
/// 64-bit accumulator lanes — overflow-free for any span length.
inline __m256i accumulate_madd(__m256i acc, __m256i madd) {
  const __m256i zero = _mm256_setzero_si256();
  acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(madd, zero));
  return _mm256_add_epi64(acc, _mm256_unpackhi_epi32(madd, zero));
}

std::int64_t avx2_sum_sq_diff(const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i dlo = _mm256_sub_epi16(_mm256_unpacklo_epi8(va, zero),
                                         _mm256_unpacklo_epi8(vb, zero));
    const __m256i dhi = _mm256_sub_epi16(_mm256_unpackhi_epi8(va, zero),
                                         _mm256_unpackhi_epi8(vb, zero));
    acc = accumulate_madd(acc, _mm256_madd_epi16(dlo, dlo));
    acc = accumulate_madd(acc, _mm256_madd_epi16(dhi, dhi));
  }
  std::int64_t total = hsum_sad256(acc);
  if (i < n) {  // one 16-pixel tail (n is a multiple of 16)
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i z = _mm_setzero_si128();
    const __m128i dlo =
        _mm_sub_epi16(_mm_unpacklo_epi8(va, z), _mm_unpacklo_epi8(vb, z));
    const __m128i dhi =
        _mm_sub_epi16(_mm_unpackhi_epi8(va, z), _mm_unpackhi_epi8(vb, z));
    __m128i acc32 = _mm_add_epi32(_mm_madd_epi16(dlo, dlo),
                                  _mm_madd_epi16(dhi, dhi));
    acc32 = _mm_add_epi32(
        acc32, _mm_shuffle_epi32(acc32, _MM_SHUFFLE(1, 0, 3, 2)));
    acc32 = _mm_add_epi32(
        acc32, _mm_shuffle_epi32(acc32, _MM_SHUFFLE(2, 3, 0, 1)));
    total += _mm_cvtsi128_si32(acc32);
  }
  return total;
}

void avx2_ssim_stats_8x8(const std::uint8_t* a, std::ptrdiff_t a_stride,
                         const std::uint8_t* b, std::ptrdiff_t b_stride,
                         std::int64_t out[5]) {
  // Two rows per iteration in 16-lane 16-bit vectors.  First moments
  // stay exact in 16-bit lanes (8 rows * 255 = 2040); second-moment
  // vpmaddwd partials stay far under 2^31.
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc_aa = zero;
  __m256i acc_bb = zero;
  __m256i acc_ab = zero;
  __m256i sum_a16 = zero;
  __m256i sum_b16 = zero;
  const auto load2x8 = [](const std::uint8_t* lo, const std::uint8_t* hi) {
    return _mm256_cvtepu8_epi16(_mm_unpacklo_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lo)),
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(hi))));
  };
  for (int y = 0; y < 8; y += 2) {
    const __m256i ra = load2x8(a + y * a_stride, a + (y + 1) * a_stride);
    const __m256i rb = load2x8(b + y * b_stride, b + (y + 1) * b_stride);
    sum_a16 = _mm256_add_epi16(sum_a16, ra);
    sum_b16 = _mm256_add_epi16(sum_b16, rb);
    acc_aa = _mm256_add_epi32(acc_aa, _mm256_madd_epi16(ra, ra));
    acc_bb = _mm256_add_epi32(acc_bb, _mm256_madd_epi16(rb, rb));
    acc_ab = _mm256_add_epi32(acc_ab, _mm256_madd_epi16(ra, rb));
  }
  const __m256i one16 = _mm256_set1_epi16(1);
  const auto hsum32 = [](__m256i v) -> std::int64_t {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
  };
  out[0] = hsum32(_mm256_madd_epi16(sum_a16, one16));
  out[1] = hsum32(_mm256_madd_epi16(sum_b16, one16));
  out[2] = hsum32(acc_aa);
  out[3] = hsum32(acc_bb);
  out[4] = hsum32(acc_ab);
}

const KernelTable kAvx2Table = {
    "avx2",         Backend::kAvx2, avx2_sad_16x16, avx2_sad_16x16_x4,
    avx2_halfpel_16x16, avx2_fdct8, avx2_idct8,
    avx2_sum_sq_diff,   avx2_ssim_stats_8x8,
};

}  // namespace

const KernelTable* avx2_kernel_table() { return &kAvx2Table; }

}  // namespace qosctrl::media::simd

#else  // not built with AVX2

namespace qosctrl::media::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace qosctrl::media::simd

#endif

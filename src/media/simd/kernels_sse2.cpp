// SSE2 kernels — the x86-64 baseline backend: `psadbw` macroblock SAD
// (single and 4-candidate batch) and `pavgb` / widened-16-bit half-pel
// interpolation.  SSE2 is implied by the x86-64 ABI, so this TU needs
// no special compile flags; on other architectures it compiles to a
// null table.  The DCT entries alias the scalar kernels: an exact
// vector DCT needs 64-bit lanes and AVX2 makes that worthwhile
// (kernels_avx2.cpp), while a 16-bit-lane SSE2 version could not stay
// bit-exact with the scalar reference.
#include "media/simd/kernels_impl.h"

// x86-64 only: the x86-64 ABI guarantees SSE2, so the table can be
// compiled and advertised unconditionally.  32-bit x86 gets the
// scalar backend — SSE2 is neither an ABI guarantee nor compiled in
// by default there, and a table-presence check would mis-advertise it
// on pre-SSE2 CPUs.
#if defined(__x86_64__) || defined(_M_X64)
#define QC_SIMD_X86_64 1
#endif

#ifdef QC_SIMD_X86_64

#include <emmintrin.h>

namespace qosctrl::media::simd {
namespace {

constexpr int kMb = 16;

/// Sum of the two 64-bit halves of a psadbw accumulator.
inline std::int64_t hsum_sad(__m128i acc) {
  return _mm_cvtsi128_si64(acc) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc));
}

/// psadbw of one 16-pixel row pair.
inline __m128i row_sad(const std::uint8_t* c, const std::uint8_t* r) {
  const __m128i vc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c));
  const __m128i vr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r));
  return _mm_sad_epu8(vc, vr);
}

std::int64_t sse2_sad_16x16(const std::uint8_t* cur, const std::uint8_t* ref,
                            std::ptrdiff_t ref_stride, std::int64_t best) {
  std::int64_t acc = 0;
  for (int y = 0; y < kMb; y += 4) {
    __m128i v = row_sad(cur + (y + 0) * kMb, ref + (y + 0) * ref_stride);
    v = _mm_add_epi64(v, row_sad(cur + (y + 1) * kMb,
                                 ref + (y + 1) * ref_stride));
    v = _mm_add_epi64(v, row_sad(cur + (y + 2) * kMb,
                                 ref + (y + 2) * ref_stride));
    v = _mm_add_epi64(v, row_sad(cur + (y + 3) * kMb,
                                 ref + (y + 3) * ref_stride));
    acc += hsum_sad(v);
    if (acc >= best) return acc;  // same 4-row checkpoint as scalar
  }
  return acc;
}

void sse2_sad_16x16_x4(const std::uint8_t* cur,
                       const std::uint8_t* const ref[4],
                       std::ptrdiff_t ref_stride, std::int64_t best,
                       std::int64_t out[4]) {
  out[0] = out[1] = out[2] = out[3] = 0;
  for (int y = 0; y < kMb; y += 4) {
    __m128i acc0 = _mm_setzero_si128();
    __m128i acc1 = _mm_setzero_si128();
    __m128i acc2 = _mm_setzero_si128();
    __m128i acc3 = _mm_setzero_si128();
    for (int dy = 0; dy < 4; ++dy) {
      const __m128i vc = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cur + (y + dy) * kMb));
      const std::ptrdiff_t off = (y + dy) * ref_stride;
      acc0 = _mm_add_epi64(
          acc0, _mm_sad_epu8(vc, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(
                                         ref[0] + off))));
      acc1 = _mm_add_epi64(
          acc1, _mm_sad_epu8(vc, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(
                                         ref[1] + off))));
      acc2 = _mm_add_epi64(
          acc2, _mm_sad_epu8(vc, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(
                                         ref[2] + off))));
      acc3 = _mm_add_epi64(
          acc3, _mm_sad_epu8(vc, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(
                                         ref[3] + off))));
    }
    out[0] += hsum_sad(acc0);
    out[1] += hsum_sad(acc1);
    out[2] += hsum_sad(acc2);
    out[3] += hsum_sad(acc3);
    // Same all-candidates-pruned 4-row checkpoint as scalar.
    if (out[0] >= best && out[1] >= best && out[2] >= best &&
        out[3] >= best) {
      return;
    }
  }
}

void sse2_halfpel_16x16(const std::uint8_t* src, std::ptrdiff_t stride,
                        int fx, int fy, std::uint8_t* dst) {
  const __m128i two16 = _mm_set1_epi16(2);
  const __m128i zero = _mm_setzero_si128();
  for (int y = 0; y < kMb; ++y) {
    const std::uint8_t* p = src;
    const std::uint8_t* q = src + stride;
    __m128i r;
    if (fx == 1 && fy == 0) {
      // pavgb computes (a + b + 1) >> 1 — exactly the scalar rounding.
      r = _mm_avg_epu8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                       _mm_loadu_si128(
                           reinterpret_cast<const __m128i*>(p + 1)));
    } else if (fx == 0) {  // fy == 1
      r = _mm_avg_epu8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)));
    } else {
      // Diagonal (a + b + c + d + 2) >> 2 needs 16-bit headroom; the
      // four operands sum to at most 1022, so u16 lanes are exact.
      const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
      const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 1));
      const __m128i lo = _mm_srli_epi16(
          _mm_add_epi16(
              _mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                            _mm_unpacklo_epi8(b, zero)),
              _mm_add_epi16(
                  _mm_add_epi16(_mm_unpacklo_epi8(c, zero),
                                _mm_unpacklo_epi8(d, zero)),
                  two16)),
          2);
      const __m128i hi = _mm_srli_epi16(
          _mm_add_epi16(
              _mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                            _mm_unpackhi_epi8(b, zero)),
              _mm_add_epi16(
                  _mm_add_epi16(_mm_unpackhi_epi8(c, zero),
                                _mm_unpackhi_epi8(d, zero)),
                  two16)),
          2);
      r = _mm_packus_epi16(lo, hi);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), r);
    src += stride;
    dst += kMb;
  }
}

/// Widens the four non-negative 32-bit pmaddwd partials into the
/// 64-bit accumulator lanes — overflow-free for any span length.
inline __m128i accumulate_madd(__m128i acc, __m128i madd) {
  const __m128i zero = _mm_setzero_si128();
  acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(madd, zero));
  return _mm_add_epi64(acc, _mm_unpackhi_epi32(madd, zero));
}

std::int64_t sse2_sum_sq_diff(const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  for (std::size_t i = 0; i < n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i dlo = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero),
                                      _mm_unpacklo_epi8(vb, zero));
    const __m128i dhi = _mm_sub_epi16(_mm_unpackhi_epi8(va, zero),
                                      _mm_unpackhi_epi8(vb, zero));
    acc = accumulate_madd(acc, _mm_madd_epi16(dlo, dlo));
    acc = accumulate_madd(acc, _mm_madd_epi16(dhi, dhi));
  }
  return hsum_sad(acc);
}

void sse2_ssim_stats_8x8(const std::uint8_t* a, std::ptrdiff_t a_stride,
                         const std::uint8_t* b, std::ptrdiff_t b_stride,
                         std::int64_t out[5]) {
  const __m128i zero = _mm_setzero_si128();
  // 16-bit first-moment lanes stay exact (8 rows * 255 = 2040); the
  // second-moment pmaddwd partials stay far under 2^31 (8 rows * 2 *
  // 255^2 ~ 1.0e6), so 32-bit accumulation is exact throughout.
  __m128i acc_aa = zero;
  __m128i acc_bb = zero;
  __m128i acc_ab = zero;
  __m128i sum_a16 = zero;
  __m128i sum_b16 = zero;
  for (int y = 0; y < 8; ++y) {
    const __m128i ra = _mm_unpacklo_epi8(
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(a + y * a_stride)),
        zero);
    const __m128i rb = _mm_unpacklo_epi8(
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(b + y * b_stride)),
        zero);
    sum_a16 = _mm_add_epi16(sum_a16, ra);
    sum_b16 = _mm_add_epi16(sum_b16, rb);
    acc_aa = _mm_add_epi32(acc_aa, _mm_madd_epi16(ra, ra));
    acc_bb = _mm_add_epi32(acc_bb, _mm_madd_epi16(rb, rb));
    acc_ab = _mm_add_epi32(acc_ab, _mm_madd_epi16(ra, rb));
  }
  const __m128i one16 = _mm_set1_epi16(1);
  const auto hsum32 = [](__m128i v) -> std::int64_t {
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(v);
  };
  out[0] = hsum32(_mm_madd_epi16(sum_a16, one16));
  out[1] = hsum32(_mm_madd_epi16(sum_b16, one16));
  out[2] = hsum32(acc_aa);
  out[3] = hsum32(acc_bb);
  out[4] = hsum32(acc_ab);
}

const KernelTable kSse2Table = {
    "sse2",         Backend::kSse2,     sse2_sad_16x16, sse2_sad_16x16_x4,
    sse2_halfpel_16x16, scalar_fdct8, scalar_idct8,
    sse2_sum_sq_diff,   sse2_ssim_stats_8x8,
};

}  // namespace

const KernelTable* sse2_kernel_table() { return &kSse2Table; }

}  // namespace qosctrl::media::simd

#else  // !QC_SIMD_X86_64

namespace qosctrl::media::simd {
const KernelTable* sse2_kernel_table() { return nullptr; }
}  // namespace qosctrl::media::simd

#endif

// Internal declarations shared by the per-backend kernel translation
// units and the dispatcher.  Deliberately minimal: the AVX2 TU is
// compiled with -mavx2, so it must not pull in inline functions that
// other TUs also instantiate (the linker keeps one copy per inline
// function, and a copy emitted with AVX2 codegen must never be the
// one a pre-AVX2 machine executes).  Only plain function declarations
// and the fixed-point DCT constants live here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "media/simd/kernels.h"

namespace qosctrl::media::simd {

// ---------------------------------------------------------------------------
// Fixed-point LLM DCT constants (libjpeg "islow" network).  Each 1-D
// pass computes the sqrt(8)-scaled 8-point DCT (or its inverse) with
// constants in kDctConstBits fixed point; the final descale folds both
// passes' scale factors plus the 2^3 = (sqrt 8)^2 down to the
// orthonormal range in a single rounded shift.  kDctPass1Bits keeps
// the inter-pass rounding error far below one output unit.

inline constexpr int kDctConstBits = 15;
inline constexpr int kDctPass1Bits = 9;

constexpr std::int64_t dct_fix(double x) {
  return static_cast<std::int64_t>(x * (INT64_C(1) << kDctConstBits) + 0.5);
}

inline constexpr std::int64_t kFix_0_298631336 = dct_fix(0.298631336);
inline constexpr std::int64_t kFix_0_390180644 = dct_fix(0.390180644);
inline constexpr std::int64_t kFix_0_541196100 = dct_fix(0.541196100);
inline constexpr std::int64_t kFix_0_765366865 = dct_fix(0.765366865);
inline constexpr std::int64_t kFix_0_899976223 = dct_fix(0.899976223);
inline constexpr std::int64_t kFix_1_175875602 = dct_fix(1.175875602);
inline constexpr std::int64_t kFix_1_501321110 = dct_fix(1.501321110);
inline constexpr std::int64_t kFix_1_847759065 = dct_fix(1.847759065);
inline constexpr std::int64_t kFix_1_961570560 = dct_fix(1.961570560);
inline constexpr std::int64_t kFix_2_053119869 = dct_fix(2.053119869);
inline constexpr std::int64_t kFix_2_562915447 = dct_fix(2.562915447);
inline constexpr std::int64_t kFix_3_072711026 = dct_fix(3.072711026);

// ---------------------------------------------------------------------------
// Scalar reference kernels (always available; the oracle every SIMD
// backend is pinned against).

std::int64_t scalar_sad_16x16(const std::uint8_t* cur,
                              const std::uint8_t* ref,
                              std::ptrdiff_t ref_stride, std::int64_t best);
void scalar_sad_16x16_x4(const std::uint8_t* cur,
                         const std::uint8_t* const ref[4],
                         std::ptrdiff_t ref_stride, std::int64_t best,
                         std::int64_t out[4]);
void scalar_halfpel_16x16(const std::uint8_t* src, std::ptrdiff_t stride,
                          int fx, int fy, std::uint8_t* dst);
void scalar_fdct8(const std::int16_t* in, std::int32_t* out);
void scalar_idct8(const std::int32_t* in, std::int16_t* out);
std::int64_t scalar_sum_sq_diff(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t n);
void scalar_ssim_stats_8x8(const std::uint8_t* a, std::ptrdiff_t a_stride,
                           const std::uint8_t* b, std::ptrdiff_t b_stride,
                           std::int64_t out[5]);

// ---------------------------------------------------------------------------
// Per-backend tables.  Each accessor returns nullptr when the backend
// is not compiled in (non-x86 build, or a compiler without AVX2
// support); whether the *CPU* can run the AVX2 table is the
// dispatcher's CPUID check, not these.

const KernelTable* sse2_kernel_table();  ///< null off x86
const KernelTable* avx2_kernel_table();  ///< null unless built with AVX2
const KernelTable* neon_kernel_table();  ///< null off AArch64

}  // namespace qosctrl::media::simd

// Backend selection: CPUID detection, the QOSCTRL_FORCE_SCALAR /
// QOSCTRL_SIMD overrides, and the per-backend table registry.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "media/simd/kernels_impl.h"
#include "util/check.h"

namespace qosctrl::media::simd {
namespace {

const KernelTable kScalarTable = {
    "scalar",           Backend::kScalar, scalar_sad_16x16,
    scalar_sad_16x16_x4, scalar_halfpel_16x16, scalar_fdct8, scalar_idct8,
    scalar_sum_sq_diff,  scalar_ssim_stats_8x8,
};

/// The CPU can execute `b`'s kernels *and* they were compiled in.
bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
      // SSE2 is part of the x86-64 ABI; table presence is the check.
      return sse2_kernel_table() != nullptr;
    case Backend::kAvx2:
      if (avx2_kernel_table() == nullptr) return false;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
      return neon_kernel_table() != nullptr;
  }
  return false;
}

Backend detect_best() {
  if (cpu_supports(Backend::kAvx2)) return Backend::kAvx2;
  if (cpu_supports(Backend::kSse2)) return Backend::kSse2;
  if (cpu_supports(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

bool ascii_iequals(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? *a - 'A' + 'a' : *a;
    const char cb = (*b >= 'A' && *b <= 'Z') ? *b - 'A' + 'a' : *b;
    if (ca != cb) return false;
  }
  return *a == *b;
}

std::atomic<const KernelTable*>& active_table_slot() {
  static std::atomic<const KernelTable*> slot{[] {
#ifdef QOSCTRL_FORCE_SCALAR
    constexpr bool kCompiledForceScalar = true;
#else
    constexpr bool kCompiledForceScalar = false;
#endif
    const Backend chosen = resolve_backend(
        detect_best(), kCompiledForceScalar,
        std::getenv("QOSCTRL_FORCE_SCALAR"), std::getenv("QOSCTRL_SIMD"),
        &cpu_supports);
    return &kernels_for(chosen);
  }()};
  return slot;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

Backend parse_backend(const char* s, Backend fallback) {
  if (s == nullptr) return fallback;
  for (const Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2,
                          Backend::kNeon}) {
    if (ascii_iequals(s, backend_name(b))) return b;
  }
  return fallback;
}

bool env_flag_set(const char* value) {
  if (value == nullptr) return false;
  return !(value[0] == '\0' || ascii_iequals(value, "0") ||
           ascii_iequals(value, "off") || ascii_iequals(value, "false"));
}

Backend resolve_backend(Backend detected, bool compiled_force_scalar,
                        const char* force_scalar_env, const char* simd_env,
                        bool (*supported)(Backend)) {
  if (compiled_force_scalar || env_flag_set(force_scalar_env)) {
    return Backend::kScalar;
  }
  if (simd_env != nullptr) {
    const Backend requested = parse_backend(simd_env, detected);
    if (supported(requested)) return requested;
  }
  return detected;
}

bool backend_supported(Backend b) { return cpu_supports(b); }

Backend detected_backend() { return detect_best(); }

const KernelTable& kernels_for(Backend b) {
  QC_EXPECT(backend_supported(b),
            "requested kernel backend is not supported on this machine");
  switch (b) {
    case Backend::kScalar:
      return kScalarTable;
    case Backend::kSse2:
      return *sse2_kernel_table();
    case Backend::kAvx2:
      return *avx2_kernel_table();
    case Backend::kNeon:
      return *neon_kernel_table();
  }
  return kScalarTable;
}

const KernelTable& active_kernels() {
  return *active_table_slot().load(std::memory_order_acquire);
}

Backend active_backend() { return active_kernels().backend; }

Backend set_backend_for_testing(Backend b) {
  const Backend previous = active_backend();
  active_table_slot().store(&kernels_for(b), std::memory_order_release);
  return previous;
}

}  // namespace qosctrl::media::simd

// Waveform tracing demo: run one controlled cycle on the virtual
// platform and dump a VCD file viewable in GTKWave — the action id,
// quality level and busy flag over virtual cycle time.
//
//   ./build/examples/trace_waveform [out.vcd]
#include <cstdio>

#include "encoder/body.h"
#include "encoder/system_builder.h"
#include "platform/vcd.h"
#include "platform/virtual_processor.h"
#include "qos/controller.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace qosctrl;
  const char* path = argc > 1 ? argv[1] : "cycle.vcd";

  // One frame of the paper's encoder geometry, shrunk to 12 macroblocks
  // so the waveform is comfortably browsable.
  const auto es = enc::build_encoder_system(12, 12LL * 197531,
                                            platform::figure5_cost_table());
  platform::VirtualProcessor proc(
      platform::CostModel(platform::figure5_cost_table(),
                          platform::CostModelConfig{}, util::Rng(7)),
      /*keep_trace=*/true);
  qos::TableController controller(es.tables);

  while (!controller.done()) {
    const qos::Decision d = controller.next(proc.clock().now());
    const enc::UnrolledAction ua = enc::decode_unrolled(d.action);
    // Per-MB content variation: odd macroblocks are "busy".  The cost
    // table is indexed by *body* action, so the waveform's action
    // signal shows 0..8 repeating per macroblock.
    const double work = (ua.macroblock % 2 == 0) ? 0.7 : 1.3;
    proc.execute(enc::id(ua.action), static_cast<std::size_t>(d.quality),
                 work);
  }

  if (!platform::write_vcd_file(path, proc.trace())) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %s: %zu events over %lld virtual cycles\n", path,
              proc.trace().size(),
              static_cast<long long>(proc.clock().now()));
  std::printf("view with:  gtkwave %s\n", path);
  return 0;
}

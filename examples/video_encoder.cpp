// Video encoder demo: the paper's evaluation scenario on a shortened
// clip — side-by-side controlled vs constant-quality encoding of the
// same synthetic video, with per-frame output.
//
//   ./build/examples/video_encoder [num_frames]
//
// Watch the controlled encoder modulate Motion_Estimate's quality level
// frame by frame (high on calm scenes, low on the busy one), never
// skipping, while the constant-quality baseline overruns its budget and
// drops frames when the input buffer overflows.
#include <cstdio>
#include <cstdlib>

#include "pipeline/simulation.h"

int main(int argc, char** argv) {
  using namespace qosctrl;
  int frames = 130;
  if (argc > 1) frames = std::atoi(argv[1]);
  if (frames < 10) frames = 10;

  pipe::PipelineConfig cfg;
  cfg.video.num_frames = frames;
  cfg.video.num_scenes = 3;  // scene 2 is a busy (fast-pan) scene

  cfg.mode = pipe::ControlMode::kControlled;
  const pipe::PipelineResult controlled = pipe::run_pipeline(cfg);
  cfg.mode = pipe::ControlMode::kConstantQuality;
  cfg.constant_quality = 3;
  const pipe::PipelineResult constant = pipe::run_pipeline(cfg);

  std::printf("%5s | %28s | %28s\n", "", "controlled (K=1)",
              "constant q=3 (K=1)");
  std::printf("%5s | %8s %6s %6s %5s | %8s %6s %6s %5s\n", "frame",
              "Mcycles", "psnr", "q", "", "Mcycles", "psnr", "q", "");
  for (int f = 0; f < frames; ++f) {
    const auto& a = controlled.frames[static_cast<std::size_t>(f)];
    const auto& b = constant.frames[static_cast<std::size_t>(f)];
    std::printf("%5d | %8.2f %6.2f %6.2f %5s | %8.2f %6.2f %6.2f %5s%s\n",
                f, a.encode_cycles / 1e6, a.psnr, a.mean_quality,
                a.scene_cut ? "CUT" : "", b.encode_cycles / 1e6, b.psnr,
                b.mean_quality, b.skipped ? "SKIP" : "",
                (f % 10 == 9) ? "" : "");
  }

  std::printf("\ncontrolled : %s\n", pipe::summarize(controlled).c_str());
  std::printf("constant q3: %s\n", pipe::summarize(constant).c_str());
  std::printf(
      "\ncontrolled: %d skips, %d misses | constant: %d skips\n",
      controlled.total_skips, controlled.total_deadline_misses,
      constant.total_skips);
  return 0;
}

// Quickstart: build a small parameterized real-time system by hand,
// compile it with the prototype tool, and run one controlled cycle.
//
//   cmake --build build && ./build/examples/quickstart
//
// The application is a toy three-stage pipeline (acquire -> process ->
// emit) where only `process` has quality levels.  The controller keeps
// quality as high as the elapsed time allows while guaranteeing that no
// deadline is ever missed for any actual times below the worst case.
#include <cstdio>

#include "qos/runner.h"
#include "toolgen/tool.h"
#include "util/rng.h"

int main() {
  using namespace qosctrl;

  // 1. Describe one cycle body: acquire -> process -> emit.
  toolgen::ToolInput input;
  const rt::ActionId acquire = input.body.add_action("acquire");
  const rt::ActionId process = input.body.add_action("process");
  const rt::ActionId emit = input.body.add_action("emit");
  input.body.add_edge(acquire, process);
  input.body.add_edge(process, emit);

  // 2. Quality levels and their execution-time estimates (from your
  //    profiler): average / worst case, in cycles.
  input.qualities = {0, 1, 2};
  input.times = {
      // q=0            acquire          process          emit
      {{100, 150}, {200, 400}, {80, 120}},
      // q=1: process does more work
      {{100, 150}, {500, 1200}, {80, 120}},
      // q=2: maximum effort
      {{100, 150}, {900, 2500}, {80, 120}},
  };

  // 3. The cycle repeats 8 times per period with evenly paced
  //    deadlines; the whole cycle must finish within 8000 cycles.
  input.iterations = 8;
  input.deadline = toolgen::evenly_paced_deadlines(8000, 8);

  // 4. Compile: EDF schedule + slack tables, checked for Definition 2.3
  //    and the schedulability precondition.
  const toolgen::ToolOutput tool = toolgen::run_tool(input);
  std::printf("compiled %zu schedule steps, %zu quality levels\n",
              tool.tables->num_positions(),
              tool.tables->quality_levels().size());

  // 5. Run one controlled cycle against simulated actual times (any
  //    value up to the worst case is admissible).
  qos::TableController controller(tool.tables);
  util::Rng rng(1);
  const qos::CycleTrace trace = qos::run_cycle(
      *tool.system, controller,
      [&](rt::ActionId a, rt::QualityLevel q) -> rt::Cycles {
        return rng.uniform_i64(tool.system->cav(q, a) / 2,
                               tool.system->cwc(q, a));
      });

  std::printf("\n%-4s %-12s %-8s %-10s %-10s %-10s\n", "step", "action",
              "quality", "start", "cost", "deadline");
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const auto& s = trace.steps[i];
    std::printf("%-4zu %-12s %-8d %-10lld %-10lld %-10lld\n", i,
                tool.system->graph().name(s.action).c_str(), s.quality,
                static_cast<long long>(s.start),
                static_cast<long long>(s.cost),
                static_cast<long long>(s.deadline));
  }
  std::printf(
      "\ntotal %lld cycles of 8000 budget (utilization %.1f%%), "
      "%d deadline misses, mean quality %.2f\n",
      static_cast<long long>(trace.total_cycles),
      100.0 * trace.budget_utilization(8000), trace.deadline_misses,
      trace.mean_quality());
  return trace.deadline_misses == 0 ? 0 : 1;
}

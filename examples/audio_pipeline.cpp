// Audio pipeline: the QoS controller on a different dataflow
// application — a real-time audio effects chain, showing the library is
// not tied to video.
//
// One cycle processes 32 audio blocks; each block runs
//   read -> denoise -> equalize -> encode -> write
// where `denoise` (adaptive filter order) and `encode` (psychoacoustic
// analysis depth) both have quality levels — unlike the paper's encoder
// this system has TWO quality-dependent actions, which the controller
// handles without modification.
//
// The cost source models an interrupt-laden platform: occasionally an
// action takes close to its worst case.  The controller absorbs the
// spikes by degrading, then recovers.
#include <cstdio>

#include "qos/runner.h"
#include "toolgen/tool.h"
#include "util/rng.h"

int main() {
  using namespace qosctrl;

  toolgen::ToolInput input;
  const rt::ActionId read = input.body.add_action("read");
  const rt::ActionId denoise = input.body.add_action("denoise");
  const rt::ActionId equalize = input.body.add_action("equalize");
  const rt::ActionId encode = input.body.add_action("encode");
  const rt::ActionId write = input.body.add_action("write");
  input.body.add_edge(read, denoise);
  input.body.add_edge(denoise, equalize);
  input.body.add_edge(equalize, encode);
  input.body.add_edge(encode, write);

  // Four quality levels; denoise and encode scale with q.
  input.qualities = {0, 1, 2, 3};
  auto t = [](rt::Cycles av, rt::Cycles wc) {
    return toolgen::TimeEntry{av, wc};
  };
  input.times = {
      // read        denoise          equalize      encode          write
      {t(50, 80), t(100, 180), t(120, 160), t(150, 260), t(40, 60)},
      {t(50, 80), t(220, 420), t(120, 160), t(300, 550), t(40, 60)},
      {t(50, 80), t(420, 800), t(120, 160), t(520, 950), t(40, 60)},
      {t(50, 80), t(700, 1400), t(120, 160), t(800, 1500), t(40, 60)},
  };

  // 32 blocks per 48 kHz audio period; headroom fits q~2 on average.
  input.iterations = 32;
  const rt::Cycles kBudget = 32 * 2200;
  input.deadline = toolgen::evenly_paced_deadlines(kBudget, 32);

  const toolgen::ToolOutput tool = toolgen::run_tool(input);

  // Run 40 cycles; inject a worst-case burst in cycles 15..20.
  util::Rng rng(7);
  qos::TableController controller(tool.tables);
  std::printf("%6s %10s %10s %8s %8s\n", "cycle", "cycles", "budget%",
              "mean-q", "misses");
  int total_misses = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    const bool burst = cycle >= 15 && cycle < 20;
    const qos::CycleTrace trace = qos::run_cycle(
        *tool.system, controller,
        [&](rt::ActionId a, rt::QualityLevel q) -> rt::Cycles {
          const rt::Cycles av = tool.system->cav(q, a);
          const rt::Cycles wc = tool.system->cwc(q, a);
          if (burst && rng.chance(0.5)) return wc;  // interrupt storm
          return rng.uniform_i64(av / 2, av + (wc - av) / 4);
        });
    total_misses += trace.deadline_misses;
    std::printf("%6d %10lld %9.1f%% %8.2f %8d%s\n", cycle,
                static_cast<long long>(trace.total_cycles),
                100.0 * trace.budget_utilization(kBudget),
                trace.mean_quality(), trace.deadline_misses,
                burst ? "   <- worst-case burst" : "");
  }
  std::printf("\ntotal deadline misses: %d (guaranteed 0)\n", total_misses);
  return total_misses == 0 ? 0 : 1;
}

// Prototype-tool demo (paper Figure 4): compile the encoder's
// controller to a standalone C file, exactly the artifact the paper's
// tool links with the application actions on the embedded target.
//
//   ./build/examples/generate_controller [out.c] [macroblocks]
//
// The generated unit is dependency-free C99: the EDF schedule, the two
// slack tables, and the generic quality-manager step function
// qos_next(t, &action, &quality).
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "encoder/body.h"
#include "platform/cost_model.h"
#include "toolgen/codegen.h"
#include "toolgen/tool.h"

int main(int argc, char** argv) {
  using namespace qosctrl;
  const char* path = argc > 1 ? argv[1] : "qos_controller.c";
  int macroblocks = argc > 2 ? std::atoi(argv[2]) : 99;
  if (macroblocks < 1) macroblocks = 1;

  toolgen::ToolInput input;
  input.body = enc::make_body_graph();
  input.iterations = macroblocks;
  input.qualities = platform::figure5_quality_levels();
  const platform::CostTable costs = platform::figure5_cost_table();
  input.times.resize(input.qualities.size());
  for (std::size_t qi = 0; qi < input.qualities.size(); ++qi) {
    for (int a = 0; a < enc::kNumBodyActions; ++a) {
      const platform::CostSpec& s = costs.at(a, qi);
      input.times[qi].push_back(toolgen::TimeEntry{s.average, s.worst_case});
    }
  }
  const rt::Cycles budget = 197531LL * macroblocks;  // paper pacing
  input.deadline = toolgen::evenly_paced_deadlines(budget, macroblocks);

  const toolgen::ToolOutput tool = toolgen::run_tool(input);
  const std::string code =
      toolgen::generate_c_controller(*tool.tables, input.body);

  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  f << code;
  std::printf("wrote %s: %zu bytes, %zu schedule steps, %zu levels\n", path,
              code.size(), tool.tables->num_positions(),
              tool.tables->quality_levels().size());
  std::printf("compile it with:  cc -std=c99 -c %s\n", path);
  return 0;
}
